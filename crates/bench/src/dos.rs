//! Slow-DoS exhibit — attack, hardening and detection in one grid.
//!
//! Exercises the slow-rate HTTP/2 workloads of arXiv:2203.16796
//! (Tripathi; ROADMAP item 5) against the simulated server and reports
//! three sections:
//!
//! * **Standalone grid** — each attack variant against one server, with
//!   and without the [`ServerGuard`] shedding policy. The undefended
//!   column shows what the attack pins (workers held, parser threads
//!   captured, control-plane backlog); the guarded column shows when the
//!   guard shed the connection and how fast the online detector flagged
//!   it.
//! * **Fleet contention** — hostile pairs inside the population run,
//!   sharing one worker pool per shard with honest bystanders. Undefended,
//!   the attackers starve bystander page loads; guarded, every attacker is
//!   shed and bystander completion recovers.
//! * **False positives** — the detector and guard attached to honest
//!   traffic: benign single-pair trials under every adversary condition of
//!   the paper's grid (including the full §V serialization attack — a
//!   *network*-level adversary the DoS detector must not confuse with a
//!   hostile client), plus the benign pairs of the fleet runs. Every row
//!   must report zero alerts and zero shed connections.
//!
//! All attacks are RFC-legal by construction, so `--check` keeps the
//! conformance oracle green across the whole exhibit.

use h2priv_core::experiment::run_paper_trial;
use h2priv_core::AttackConfig;
use h2priv_dos::{DetectorConfig, DosAttack, DosConfig, GuardConfig};
use h2priv_netsim::{mbps, SimDuration};
use h2priv_testkit::fleet::{merge_shards, run_fleet_shard, FleetConfig, FleetConformance};
use h2priv_testkit::{run_dos_trial, DosScenarioConfig};
use h2priv_web::PoolConfig;

use crate::json::{object, Json, ToJson};
use crate::runner;

/// One (attack × defense) cell of the standalone grid.
#[derive(Debug, Clone)]
pub struct DosCell {
    /// Attack variant name.
    pub attack: &'static str,
    /// Whether the server ran the guard.
    pub guarded: bool,
    /// When the server shed the attacker, ms (None = ran to deadline).
    pub shed_ms: Option<f64>,
    /// First-alert latency after the attack started, ms.
    pub detect_ms: Option<f64>,
    /// Detector alerts raised.
    pub alerts: u64,
    /// Request workers still held when the run ended.
    pub workers_held: usize,
    /// Parser threads still captured when the run ended.
    pub parsers_held: usize,
    /// Control-plane backlog at the end, ms of unprocessed SETTINGS work.
    pub settings_backlog_ms: u64,
    /// Requests the server admitted or parked.
    pub requests_seen: u64,
    /// Frames the attacker put on the wire.
    pub frames_sent: u64,
    /// Resets the attacker absorbed.
    pub resets_received: u64,
}

impl ToJson for DosCell {
    fn to_json(&self) -> Json {
        object([
            ("attack", self.attack.to_json()),
            ("guarded", self.guarded.to_json()),
            (
                "shed_ms",
                self.shed_ms.map(|v| v.to_json()).unwrap_or(Json::Null),
            ),
            (
                "detect_ms",
                self.detect_ms.map(|v| v.to_json()).unwrap_or(Json::Null),
            ),
            ("alerts", self.alerts.to_json()),
            ("workers_held", (self.workers_held as u64).to_json()),
            ("parsers_held", (self.parsers_held as u64).to_json()),
            ("settings_backlog_ms", self.settings_backlog_ms.to_json()),
            ("requests_seen", self.requests_seen.to_json()),
            ("frames_sent", self.frames_sent.to_json()),
            ("resets_received", self.resets_received.to_json()),
        ])
    }
}

/// One fleet-contention run (an attack variant, defended or not).
#[derive(Debug, Clone)]
pub struct DosFleetRow {
    /// Attack the hostile pairs mount.
    pub attack: &'static str,
    /// Whether every server ran the guard + detector.
    pub guarded: bool,
    /// Hostile pairs in the population.
    pub attackers: u32,
    /// Hostile pairs the servers shed.
    pub shed: u32,
    /// Hostile pairs flagged by the detector.
    pub detected: u32,
    /// Mean first-alert latency over detected pairs, ms.
    pub detect_ms_mean: f64,
    /// Benign pairs in the population.
    pub bystanders: u32,
    /// Benign pairs whose page load completed.
    pub completed: u32,
    /// Bystander page-completion rate, %.
    pub completion_pct: f64,
    /// Detector alerts on benign pairs (false positives; must be 0).
    pub benign_alerts: u64,
    /// Requests that had to park for a free worker.
    pub parked: u64,
}

impl ToJson for DosFleetRow {
    fn to_json(&self) -> Json {
        object([
            ("attack", self.attack.to_json()),
            ("guarded", self.guarded.to_json()),
            ("attackers", (self.attackers as u64).to_json()),
            ("shed", (self.shed as u64).to_json()),
            ("detected", (self.detected as u64).to_json()),
            ("detect_ms_mean", self.detect_ms_mean.to_json()),
            ("bystanders", (self.bystanders as u64).to_json()),
            ("completed", (self.completed as u64).to_json()),
            ("completion_pct", self.completion_pct.to_json()),
            ("benign_alerts", self.benign_alerts.to_json()),
            ("parked", self.parked.to_json()),
        ])
    }
}

/// One false-positive row: honest traffic with the monitoring stack on.
#[derive(Debug, Clone)]
pub struct DosFpRow {
    /// Benign condition label.
    pub condition: &'static str,
    /// Trials run.
    pub trials: u64,
    /// Detector alerts across all trials (must be 0).
    pub alerts: u64,
    /// Guard shedding actions across all trials (must be 0).
    pub guard_kills: u64,
    /// Trials whose page load completed.
    pub completed: u64,
}

impl ToJson for DosFpRow {
    fn to_json(&self) -> Json {
        object([
            ("condition", self.condition.to_json()),
            ("trials", self.trials.to_json()),
            ("alerts", self.alerts.to_json()),
            ("guard_kills", self.guard_kills.to_json()),
            ("completed", self.completed.to_json()),
        ])
    }
}

/// The whole exhibit.
#[derive(Debug, Clone)]
pub struct DosReport {
    /// Standalone attack grid.
    pub grid: Vec<DosCell>,
    /// Fleet contention runs.
    pub fleet: Vec<DosFleetRow>,
    /// False-positive sweep.
    pub fp: Vec<DosFpRow>,
}

impl ToJson for DosReport {
    fn to_json(&self) -> Json {
        object([
            ("grid", self.grid.to_json()),
            ("fleet", self.fleet.to_json()),
            ("fp", self.fp.to_json()),
        ])
    }
}

/// Fixed seed for the standalone grid: the attacker is deterministic, the
/// seed only drives TCP/TLS nonces and server worker jitter.
const GRID_SEED: u64 = 0xD05;

fn grid_cell(attack: DosAttack, guarded: bool) -> DosCell {
    let r = run_dos_trial(&DosScenarioConfig {
        seed: GRID_SEED,
        attack: DosConfig::for_attack(attack),
        guard: guarded.then(GuardConfig::default),
        detector: Some(DetectorConfig::default()),
        pool: Some(PoolConfig::default()),
        deadline: SimDuration::from_secs(30),
        conformance: runner::conformance_enabled(),
    });
    runner::record_events(r.events);
    runner::record_violations(
        r.violations_total,
        r.violations.iter().map(|v| v.to_string()),
    );
    DosCell {
        attack: attack.name(),
        guarded,
        shed_ms: r.shed_at.map(|t| t.as_nanos() as f64 / 1e6),
        detect_ms: r.detection_latency.map(|d| d.as_nanos() as f64 / 1e6),
        alerts: r.alerts.len() as u64,
        workers_held: r.pool_in_use,
        parsers_held: r.parser_held,
        settings_backlog_ms: r.pool_busy_until.as_millis(),
        requests_seen: r.requests_seen,
        frames_sent: r.attacker.frames_sent,
        resets_received: r.attacker.resets_received,
    }
}

/// The fleet-contention configuration: small enough to stay fast, coupled
/// enough (4 hostile pairs on a 4-worker pool) that undefended attackers
/// visibly starve the bystanders.
fn fleet_dos_config(attack: DosAttack, guarded: bool) -> FleetConfig {
    FleetConfig {
        seed: 0xD05F_1EE7,
        population: 16,
        shards: 2,
        conformance: if runner::conformance_enabled() {
            FleetConformance::Full
        } else {
            FleetConformance::Off
        },
        start_spread: SimDuration::from_millis(200),
        deadline: SimDuration::from_secs(40),
        dos: Some(h2priv_testkit::FleetDosConfig {
            attack,
            attackers: 4,
            guard: guarded.then(GuardConfig::default),
            detector: guarded.then(DetectorConfig::default),
            pool: Some(PoolConfig {
                capacity: 4,
                ..PoolConfig::default()
            }),
        }),
        ..FleetConfig::default()
    }
}

fn fleet_row(attack: DosAttack, guarded: bool) -> DosFleetRow {
    let config = fleet_dos_config(attack, guarded);
    let results = runner::run_seeded(config.shards as u64, |shard| {
        run_fleet_shard(&config, shard as u32, None)
    });
    let merged = merge_shards(config.population, config.shards, results);
    runner::record_events(merged.events);
    runner::record_sched(&merged.sched);
    runner::record_violations(
        merged.violations_total,
        merged.violations.iter().map(|v| v.to_string()),
    );
    let bystanders = config.population - merged.attackers;
    DosFleetRow {
        attack: attack.name(),
        guarded,
        attackers: merged.attackers,
        shed: merged.attackers_shed,
        detected: merged.detected,
        detect_ms_mean: if merged.detected > 0 {
            merged.detection_latency_us as f64 / merged.detected as f64 / 1e3
        } else {
            0.0
        },
        bystanders,
        completed: merged.completed,
        completion_pct: if bystanders > 0 {
            merged.completed as f64 * 100.0 / bystanders as f64
        } else {
            0.0
        },
        benign_alerts: merged.benign_alerts,
        parked: merged.pool.map(|p| p.parked).unwrap_or(0),
    }
}

/// The benign adversary grid for the false-positive sweep: each condition
/// of the paper's exhibits, with the honest client unchanged. The §IV/§V
/// attacks disturb the *network*; the DoS monitor watches the *client*,
/// so none of them may trip it.
fn fp_grid() -> [(&'static str, Option<AttackConfig>); 4] {
    [
        ("baseline (fig1/table2)", None),
        (
            "jitter 80ms (table1)",
            Some(AttackConfig::jitter_only(SimDuration::from_millis(80))),
        ),
        (
            "throttle 800kbps (fig5)",
            Some(AttackConfig::jitter_and_throttle(
                SimDuration::from_millis(80),
                mbps(800),
            )),
        ),
        ("full SV attack", Some(AttackConfig::paper_attack())),
    ]
}

fn fp_row(condition: &'static str, attack: Option<&AttackConfig>, trials: u64) -> DosFpRow {
    let rows = runner::run_seeded(trials, |seed| {
        let trial = run_paper_trial(seed, attack, |cfg| {
            cfg.conformance = runner::conformance_enabled();
            cfg.dos_guard = Some(GuardConfig::default());
            cfg.dos_detector = Some(DetectorConfig::default());
        });
        crate::common::record_conformance(&trial.result);
        crate::runner::record_sched(&trial.result.sched);
        let guard = trial.result.guard.unwrap_or_default();
        let kills = guard.header_timeouts
            + guard.progress_kills
            + guard.settings_floods
            + guard.hoard_closes;
        let completed = trial
            .result
            .outcomes
            .iter()
            .all(|o| o.completed_at.is_some());
        (
            trial.result.dos_alerts.len() as u64,
            kills,
            completed,
            trial.result.events,
        )
    });
    runner::record_events(rows.iter().map(|&(_, _, _, e)| e).sum());
    DosFpRow {
        condition,
        trials,
        alerts: rows.iter().map(|&(a, _, _, _)| a).sum(),
        guard_kills: rows.iter().map(|&(_, k, _, _)| k).sum(),
        completed: rows.iter().filter(|&&(_, _, c, _)| c).count() as u64,
    }
}

/// Runs the exhibit. `trials` scales only the false-positive sweep; the
/// attack grid and fleet runs are fixed-size.
pub fn run(trials: u64) -> DosReport {
    let mut grid = Vec::new();
    for attack in DosAttack::all() {
        for guarded in [false, true] {
            grid.push(grid_cell(attack, guarded));
        }
    }
    // Two contention mechanisms: zero-window hoarding pins request
    // workers; trickled header sequences capture parser threads.
    let mut fleet = Vec::new();
    for attack in [DosAttack::ZeroWindowHoard, DosAttack::SlowHeaders] {
        for guarded in [false, true] {
            fleet.push(fleet_row(attack, guarded));
        }
    }
    let fp = fp_grid()
        .iter()
        .map(|(name, attack)| fp_row(name, attack.as_ref(), trials))
        .collect();
    DosReport { grid, fleet, fp }
}

/// Renders the exhibit in the repro layout.
pub fn render(report: &DosReport) -> String {
    let fmt_ms = |v: Option<f64>| match v {
        Some(ms) => format!("{ms:.0}"),
        None => "-".to_owned(),
    };
    let mut out = String::new();
    out.push_str("SLOW-DOS: slow-rate HTTP/2 workloads vs. server hardening\n");
    out.push_str("-- standalone: one attacker, one server (pool capacity 16)\n");
    out.push_str(&format!(
        "   {:<18} {:<7} {:>8} {:>10} {:>7} {:>8} {:>8} {:>11} {:>7}\n",
        "attack",
        "guard",
        "shed ms",
        "detect ms",
        "alerts",
        "workers",
        "parsers",
        "backlog ms",
        "resets"
    ));
    for c in &report.grid {
        out.push_str(&format!(
            "   {:<18} {:<7} {:>8} {:>10} {:>7} {:>8} {:>8} {:>11} {:>7}\n",
            c.attack,
            if c.guarded { "on" } else { "off" },
            fmt_ms(c.shed_ms),
            fmt_ms(c.detect_ms),
            c.alerts,
            c.workers_held,
            c.parsers_held,
            c.settings_backlog_ms,
            c.resets_received,
        ));
    }
    out.push_str("-- fleet: 16 pairs, 4 hostile, one 4-worker pool per shard\n");
    out.push_str(&format!(
        "   {:<18} {:<7} {:>6} {:>9} {:>11} {:>11} {:>9} {:>7}\n",
        "attack", "guard", "shed", "detected", "detect ms", "bystander%", "FP alerts", "parked"
    ));
    for r in &report.fleet {
        out.push_str(&format!(
            "   {:<18} {:<7} {:>4}/{} {:>7}/{} {:>11.1} {:>11.1} {:>9} {:>7}\n",
            r.attack,
            if r.guarded { "on" } else { "off" },
            r.shed,
            r.attackers,
            r.detected,
            r.attackers,
            r.detect_ms_mean,
            r.completion_pct,
            r.benign_alerts,
            r.parked,
        ));
    }
    out.push_str("-- false positives: honest traffic with guard + detector armed\n");
    out.push_str(&format!(
        "   {:<24} {:>7} {:>7} {:>12} {:>10}\n",
        "condition", "trials", "alerts", "guard kills", "completed"
    ));
    for r in &report.fp {
        out.push_str(&format!(
            "   {:<24} {:>7} {:>7} {:>12} {:>10}\n",
            r.condition, r.trials, r.alerts, r.guard_kills, r.completed,
        ));
    }
    out.push_str(
        "(all workloads are RFC-legal; shed = ENHANCE_YOUR_CALM reset/GOAWAY observed by\n \
         the attacker; FP rows must stay at zero alerts and zero kills)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_grid_starves_then_sheds() {
        for attack in DosAttack::all() {
            let undefended = grid_cell(attack, false);
            assert_eq!(undefended.shed_ms, None, "{}: nothing sheds", attack.name());
            let guarded = grid_cell(attack, true);
            assert!(
                guarded.shed_ms.is_some(),
                "{}: guard must shed",
                attack.name()
            );
            assert!(
                guarded.detect_ms.is_some(),
                "{}: detector must flag",
                attack.name()
            );
            assert_eq!(
                (guarded.workers_held, guarded.parsers_held),
                (0, 0),
                "{}: shedding frees the pool",
                attack.name()
            );
        }
    }

    #[test]
    fn fp_rows_are_silent() {
        let row = fp_row("baseline", None, 2);
        assert_eq!(row.alerts, 0);
        assert_eq!(row.guard_kills, 0);
        assert_eq!(row.completed, 2);
    }

    #[test]
    fn render_lists_all_sections() {
        let report = DosReport {
            grid: vec![grid_cell(DosAttack::SettingsFlood, true)],
            fleet: vec![fleet_row(DosAttack::ZeroWindowHoard, true)],
            fp: vec![fp_row("baseline", None, 1)],
        };
        let s = render(&report);
        assert!(s.contains("standalone"));
        assert!(s.contains("fleet"));
        assert!(s.contains("false positives"));
    }
}
