//! Defense frontier — the countermeasure arena vs. the adversary grid.
//!
//! Evaluates every defense in [`DefenseSpec::arena`] against the paper's
//! escalating adversary (nothing → jitter → jitter+throttle → the full §V
//! jitter×throttle×drop attack) and reports, per cell, what the attacker
//! still recovers and what the defense costs:
//!
//! * **seq %** — full victim recovery (all 8 display ranks correct): the
//!   paper's headline privacy loss;
//! * **HTML %** — the §V success criterion on the HTML (degree 0 and
//!   identified);
//! * **ident %** — emblem images matched by size at all;
//! * **+bytes %** — response-direction wire overhead vs. the undefended
//!   run under the same adversary (padding, dummy records, retransmits);
//! * **+load %** — page-load-time overhead vs. the undefended run under
//!   the same adversary (pacing holds, serialization of padded bytes).
//!
//! Per Kerckhoffs' principle the adversary knows the deployed defense and
//! calibrates its size map against the *defended* server
//! ([`calibrate_size_map_with`]); a defense only scores if it survives an
//! adversary that adapted to it.

use h2priv_core::experiment::{calibrate_size_map_with, objects_of_interest, paper_scenario};
use h2priv_core::AttackConfig;
use h2priv_defense::DefenseSpec;
use h2priv_netsim::{mbps, Dir, SimDuration};

use crate::common::{run_batch, Batch};
use crate::json::{object, Json, ToJson};

/// One (defense × adversary) cell of the frontier.
#[derive(Debug, Clone)]
pub struct DefendCell {
    /// Defense name (from [`DefenseSpec::name`]).
    pub defense: &'static str,
    /// Adversary label.
    pub attack: &'static str,
    /// Full victim recovery: all 8 display ranks predicted correctly, %.
    pub sequence_pct: f64,
    /// §V HTML success criterion, %.
    pub html_success_pct: f64,
    /// Emblem images identified by size matching, %.
    pub ident_pct: f64,
    /// Mean response-direction wire bytes per trial.
    pub wire_bytes_mean: f64,
    /// Wire-byte overhead vs. the undefended cell under the same
    /// adversary, %.
    pub added_bytes_pct: f64,
    /// Mean page load time, ms.
    pub load_ms_mean: f64,
    /// Load-time overhead vs. the undefended cell under the same
    /// adversary, %.
    pub added_load_pct: f64,
    /// Mean dummy records sealed per trial (shaping defenses).
    pub dummies_mean: f64,
    /// Trials whose connection broke, %.
    pub broken_pct: f64,
}

impl ToJson for DefendCell {
    fn to_json(&self) -> Json {
        object([
            ("defense", self.defense.to_json()),
            ("attack", self.attack.to_json()),
            ("sequence_pct", self.sequence_pct.to_json()),
            ("html_success_pct", self.html_success_pct.to_json()),
            ("ident_pct", self.ident_pct.to_json()),
            ("wire_bytes_mean", self.wire_bytes_mean.to_json()),
            ("added_bytes_pct", self.added_bytes_pct.to_json()),
            ("load_ms_mean", self.load_ms_mean.to_json()),
            ("added_load_pct", self.added_load_pct.to_json()),
            ("dummies_mean", self.dummies_mean.to_json()),
            ("broken_pct", self.broken_pct.to_json()),
        ])
    }
}

/// The adversary grid: each escalation step of §IV/§V.
fn attack_grid() -> [(&'static str, Option<AttackConfig>); 4] {
    [
        ("no attack", None),
        (
            "jitter 80ms",
            Some(AttackConfig::jitter_only(SimDuration::from_millis(80))),
        ),
        (
            "jitter+throttle",
            Some(AttackConfig::jitter_and_throttle(
                SimDuration::from_millis(80),
                mbps(800),
            )),
        ),
        ("full SV attack", Some(AttackConfig::paper_attack())),
    ]
}

fn sequence_pct(batch: &Batch) -> f64 {
    if batch.trials.is_empty() {
        return 0.0;
    }
    batch
        .trials
        .iter()
        .filter(|(_, a)| a.full_sequence_correct)
        .count() as f64
        * 100.0
        / batch.trials.len() as f64
}

fn ident_pct(batch: &Batch) -> f64 {
    let total = batch.trials.len() * 8;
    if total == 0 {
        return 0.0;
    }
    batch
        .trials
        .iter()
        .map(|(_, a)| (1..9).filter(|&i| a.objects[i].identified).count())
        .sum::<usize>() as f64
        * 100.0
        / total as f64
}

fn wire_bytes_mean(batch: &Batch) -> f64 {
    let bytes: Vec<f64> = batch
        .trials
        .iter()
        .map(|(t, _)| t.result.trace.bytes_in_dir(Dir::RightToLeft) as f64)
        .collect();
    h2priv_analysis::stats::mean(&bytes)
}

fn load_ms_mean(batch: &Batch) -> f64 {
    let loads: Vec<f64> = batch
        .trials
        .iter()
        .filter_map(|(t, _)| {
            t.result
                .outcomes
                .iter()
                .filter_map(|o| o.completed_at)
                .max()
                .map(|t| t.as_nanos() as f64 / 1e6)
        })
        .collect();
    h2priv_analysis::stats::mean(&loads)
}

fn dummies_mean(batch: &Batch) -> f64 {
    let counts: Vec<f64> = batch
        .trials
        .iter()
        .map(|(t, _)| t.result.defense_dummies as f64)
        .collect();
    h2priv_analysis::stats::mean(&counts)
}

fn overhead_pct(defended: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (defended / baseline - 1.0) * 100.0
}

/// Runs the full frontier: every arena defense under every adversary cell.
pub fn run(trials: u64) -> Vec<DefendCell> {
    run_subset(trials, &DefenseSpec::arena())
}

/// Runs the frontier for a chosen defense set (`repro defend --defense
/// <name>` evaluates `[none, <name>]` so overheads keep their baseline).
pub fn run_subset(trials: u64, defenses: &[DefenseSpec]) -> Vec<DefendCell> {
    let (iw, _) = paper_scenario(0);
    let objects = objects_of_interest(&iw);
    let mut cells = Vec::new();
    for &defense in defenses {
        // Kerckhoffs: the adversary calibrates against the defended server.
        let map = calibrate_size_map_with(&objects, |cfg| cfg.defense = defense);
        for (attack_name, attack) in attack_grid() {
            let batch = run_batch(trials, attack.as_ref(), &map, |cfg| {
                cfg.defense = defense;
            });
            cells.push(DefendCell {
                defense: defense.name(),
                attack: attack_name,
                sequence_pct: sequence_pct(&batch),
                html_success_pct: batch.html_success_pct(),
                ident_pct: ident_pct(&batch),
                wire_bytes_mean: wire_bytes_mean(&batch),
                added_bytes_pct: 0.0,
                load_ms_mean: load_ms_mean(&batch),
                added_load_pct: 0.0,
                dummies_mean: dummies_mean(&batch),
                broken_pct: batch.broken_pct(),
            });
        }
    }
    // Overheads are relative to the undefended cell under the same
    // adversary (the arena lists the baseline first, so it is filled by
    // the time any defended cell needs it).
    let baselines: Vec<(String, f64, f64)> = cells
        .iter()
        .filter(|c| c.defense == "none")
        .map(|c| (c.attack.to_owned(), c.wire_bytes_mean, c.load_ms_mean))
        .collect();
    for cell in &mut cells {
        if let Some((_, base_bytes, base_load)) =
            baselines.iter().find(|(a, _, _)| a == cell.attack)
        {
            cell.added_bytes_pct = overhead_pct(cell.wire_bytes_mean, *base_bytes);
            cell.added_load_pct = overhead_pct(cell.load_ms_mean, *base_load);
        }
    }
    cells
}

/// Renders the frontier grouped by adversary, one line per defense.
pub fn render(cells: &[DefendCell]) -> String {
    let mut out = String::new();
    out.push_str("DEFENSE FRONTIER: countermeasure arena vs. the serialization attack\n");
    out.push_str(
        "(seq % = full victim recovery; overheads vs. undefended under the same adversary)\n",
    );
    for (attack_name, _) in attack_grid() {
        if !cells.iter().any(|c| c.attack == attack_name) {
            continue;
        }
        out.push_str(&format!("-- adversary: {attack_name}\n"));
        out.push_str(&format!(
            "   {:<20} {:>6} {:>6} {:>7} {:>8} {:>8} {:>9} {:>7}\n",
            "defense", "seq%", "HTML%", "ident%", "+bytes%", "+load%", "dummies", "broken%"
        ));
        for c in cells.iter().filter(|c| c.attack == attack_name) {
            out.push_str(&format!(
                "   {:<20} {:>6.0} {:>6.0} {:>7.1} {:>8.1} {:>8.1} {:>9.1} {:>7.0}\n",
                c.defense,
                c.sequence_pct,
                c.html_success_pct,
                c.ident_pct,
                c.added_bytes_pct,
                c.added_load_pct,
                c.dummies_mean,
                c.broken_pct
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_groups_by_adversary() {
        let cells = vec![
            DefendCell {
                defense: "none",
                attack: "no attack",
                sequence_pct: 0.0,
                html_success_pct: 0.0,
                ident_pct: 100.0,
                wire_bytes_mean: 1000.0,
                added_bytes_pct: 0.0,
                load_ms_mean: 900.0,
                added_load_pct: 0.0,
                dummies_mean: 0.0,
                broken_pct: 0.0,
            },
            DefendCell {
                defense: "constrained-padding",
                attack: "no attack",
                sequence_pct: 0.0,
                html_success_pct: 0.0,
                ident_pct: 25.0,
                wire_bytes_mean: 1100.0,
                added_bytes_pct: 10.0,
                load_ms_mean: 950.0,
                added_load_pct: 5.6,
                dummies_mean: 0.0,
                broken_pct: 0.0,
            },
        ];
        let s = render(&cells);
        assert_eq!(s.matches("-- adversary: no attack").count(), 1);
        assert!(s.contains("constrained-padding"));
    }

    #[test]
    fn overhead_pct_guards_zero_baseline() {
        assert_eq!(overhead_pct(5.0, 0.0), 0.0);
        assert!((overhead_pct(110.0, 100.0) - 10.0).abs() < 1e-9);
    }
}
