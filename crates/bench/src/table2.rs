//! Table II — "Prediction Accuracy" of the full §V attack.
//!
//! Paper columns, per object of interest (HTML + emblem images I₁…I₈ in
//! display order):
//!
//! * `T(Req O_curr) − T(Req O_prev)` and `… O_next − O_curr` — the client's
//!   inter-request gaps (measured under no attack);
//! * success % targeting one object at a time — 100 everywhere;
//! * success % targeting all objects at once — 90, 90, 85, 81, 80, 62, 64,
//!   78, 64.

use h2priv_core::experiment::{paper_scenario, run_paper_trial};
use h2priv_core::AttackConfig;

use crate::common::{calibrated_map, run_batch};
use crate::json::{object, Json, ToJson};

/// One column of the regenerated Table II.
#[derive(Debug, Clone)]
pub struct Table2Column {
    /// "HTML" or "I1" … "I8".
    pub object: String,
    /// Mean gap to the previous request, ms (baseline browsing).
    pub gap_prev_ms: f64,
    /// Mean gap to the next request, ms.
    pub gap_next_ms: f64,
    /// Success when the adversary targets this object alone, percent.
    pub one_at_a_time_pct: f64,
    /// Success when the adversary recovers the whole sequence, percent
    /// (for I_k: the k-th displayed party predicted correctly; for the
    /// HTML: identified with degree 0).
    pub all_at_once_pct: f64,
}

impl ToJson for Table2Column {
    fn to_json(&self) -> Json {
        object([
            ("object", self.object.to_json()),
            ("gap_prev_ms", self.gap_prev_ms.to_json()),
            ("gap_next_ms", self.gap_next_ms.to_json()),
            ("one_at_a_time_pct", self.one_at_a_time_pct.to_json()),
            ("all_at_once_pct", self.all_at_once_pct.to_json()),
        ])
    }
}

/// Regenerates Table II with `trials` attacked downloads (plus a small
/// unattacked batch to measure the natural inter-request gaps).
pub fn run(trials: u64) -> Vec<Table2Column> {
    let map = calibrated_map();
    let attack = AttackConfig::paper_attack();
    let batch = run_batch(trials, Some(&attack), &map, |_| {});

    // Natural gaps from a few unattacked loads: positions of the HTML and
    // the rank-k image requests within the issue sequence.
    let gap_trials = 10.min(trials).max(1);
    let per_seed = crate::runner::run_seeded(gap_trials, |seed| {
        let trial = run_paper_trial(seed, None, crate::common::conformance_tweak);
        crate::common::record_conformance(&trial.result);
        crate::runner::record_sched(&trial.result.sched);
        // Issue times in plan order.
        let mut times: Vec<(u64, h2priv_web::ObjectId)> = trial
            .result
            .outcomes
            .iter()
            .filter_map(|o| o.issued_at.first().map(|t| (t.as_nanos(), o.object)))
            .collect();
        times.sort_unstable();
        let pos_of = |obj| times.iter().position(|&(_, o)| o == obj);
        let mut targets = vec![trial.iw.html];
        targets.extend(trial.iw.golden_order.iter().map(|&p| trial.iw.images[p]));
        let gaps: Vec<(usize, Option<f64>, Option<f64>)> = targets
            .iter()
            .enumerate()
            .filter_map(|(i, &obj)| {
                pos_of(obj).map(|pos| {
                    let prev = (pos > 0).then(|| (times[pos].0 - times[pos - 1].0) as f64 / 1e6);
                    let next = (pos + 1 < times.len())
                        .then(|| (times[pos + 1].0 - times[pos].0) as f64 / 1e6);
                    (i, prev, next)
                })
            })
            .collect();
        (trial.result.events, gaps)
    });
    crate::runner::record_events(per_seed.iter().map(|(ev, _)| ev).sum());
    let mut gaps_prev = vec![Vec::new(); 9];
    let mut gaps_next = vec![Vec::new(); 9];
    for (_, gaps) in &per_seed {
        for &(i, prev, next) in gaps {
            if let Some(gap) = prev {
                gaps_prev[i].push(gap);
            }
            if let Some(gap) = next {
                gaps_next[i].push(gap);
            }
        }
    }

    let names: Vec<String> = std::iter::once("HTML".to_owned())
        .chain((1..=8).map(|i| format!("I{i}")))
        .collect();
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            // Index into analysis.objects: HTML = 0; rank-k image = the
            // party displayed at rank k-1 → objects index 1 + party.
            let (one_at_a_time, all_at_once) = if i == 0 {
                (batch.html_success_pct(), batch.html_success_pct())
            } else {
                let rank = i - 1;
                // One-at-a-time: the displayed-rank image recovered, judged
                // in isolation (its own degree + identification).
                let one = batch
                    .trials
                    .iter()
                    .filter(|(t, a)| {
                        let party = t.iw.golden_order[rank];
                        a.objects[1 + party].success
                    })
                    .count() as f64
                    * 100.0
                    / batch.trials.len().max(1) as f64;
                (one, batch.rank_correct_pct(rank))
            };
            Table2Column {
                object: name.clone(),
                gap_prev_ms: h2priv_analysis::stats::mean(&gaps_prev[i]),
                gap_next_ms: h2priv_analysis::stats::mean(&gaps_next[i]),
                one_at_a_time_pct: one_at_a_time,
                all_at_once_pct: all_at_once,
            }
        })
        .collect()
}

/// Renders the table in the paper's (transposed) layout.
pub fn render(cols: &[Table2Column]) -> String {
    let mut out = String::new();
    out.push_str("TABLE II: Prediction accuracy of the full attack\n");
    out.push_str(&format!(
        "| {:<26} |{}\n",
        "Object (O_curr)",
        cols.iter()
            .map(|c| format!(" {:>6} |", c.object))
            .collect::<String>()
    ));
    out.push_str(&format!(
        "| {:<26} |{}\n",
        "T(curr)-T(prev) (ms)",
        cols.iter()
            .map(|c| format!(" {:>6.1} |", c.gap_prev_ms))
            .collect::<String>()
    ));
    out.push_str(&format!(
        "| {:<26} |{}\n",
        "T(next)-T(curr) (ms)",
        cols.iter()
            .map(|c| format!(" {:>6.1} |", c.gap_next_ms))
            .collect::<String>()
    ));
    out.push_str(&format!(
        "| {:<26} |{}\n",
        "Success %: one at a time",
        cols.iter()
            .map(|c| format!(" {:>6.0} |", c.one_at_a_time_pct))
            .collect::<String>()
    ));
    out.push_str(&format!(
        "| {:<26} |{}\n",
        "Success %: all at once",
        cols.iter()
            .map(|c| format!(" {:>6.0} |", c.all_at_once_pct))
            .collect::<String>()
    ));
    out
}

/// Exposes the measured baseline image-degree range, for the §V narrative
/// ("the degree of multiplexing of each of these objects range from 80% to
/// 99%").
pub fn baseline_image_degrees(trials: u64) -> (f64, f64) {
    let map = calibrated_map();
    let batch = run_batch(trials, None, &map, |_| {});
    let mut lo = f64::MAX;
    let mut hi: f64 = 0.0;
    for party in 0..8 {
        let d = batch.mean_degree(1 + party);
        lo = lo.min(d);
        hi = hi.max(d);
    }
    let _ = paper_scenario(0);
    (lo * 100.0, hi * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_layout() {
        let cols = vec![Table2Column {
            object: "HTML".into(),
            gap_prev_ms: 500.0,
            gap_next_ms: 160.0,
            one_at_a_time_pct: 100.0,
            all_at_once_pct: 90.0,
        }];
        let s = render(&cols);
        assert!(s.contains("HTML"));
        assert!(s.contains("500.0"));
        assert!(s.contains("one at a time"));
    }
}
