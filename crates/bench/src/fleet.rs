//! Fleet exhibit — the population-scale contention experiment.
//!
//! Simulates N independent client–server pairs sharing the gateway
//! (`h2priv_testkit::fleet`), sharded deterministically so shards can run
//! on separate workers with byte-identical output at any `--threads`.
//! Two populations run back to back:
//!
//! * **baseline** — nobody interferes; the victim (pair 0) loads its
//!   survey page amid the bystander herd, multiplexed as usual;
//! * **attacked** — the full §V serialization attack (jitter, trigger on
//!   the 6th GET, disruption window, post-reset 80 ms serialization) is
//!   applied *only to the victim's flow* at the shared gateway. The
//!   paper's point at fleet scale: the adversary needs no per-flow
//!   infrastructure beyond the one middlebox chain, and the thousand
//!   bystander flows neither mask the victim nor break the attack.
//!
//! The exhibit reports per-run aggregate throughput (events/sec across
//! all shards) and the victim's §II-A attack criterion in both runs.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use h2priv_core::experiment::{analyze_capture, AdversarySnapshot};
use h2priv_core::{Adversary, AttackConfig};
use h2priv_defense::DefenseSpec;
use h2priv_netsim::SimDuration;
use h2priv_testkit::fleet::{
    merge_shards, run_fleet_shard, victim_shard, FleetConfig, FleetConformance, FleetProgress,
    FleetResult,
};
use h2priv_web::isidewith;

use crate::common::calibrated_map;
use crate::json::{object, Json, ToJson};
use crate::runner;

/// One population run's summary (baseline or attacked).
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// "baseline" or "attacked".
    pub label: &'static str,
    /// Simulator events across all shards.
    pub events: u64,
    /// Per-shard event counts, shard order (occupancy balance).
    pub shard_events: Vec<u64>,
    /// Wall-clock for the whole population, milliseconds.
    pub wall_ms: f64,
    /// Pairs whose page load completed.
    pub completed: u32,
    /// Pairs whose connection died.
    pub broken: u32,
    /// Object requests issued / completed across the population.
    pub requests: u64,
    /// Requests that completed.
    pub requests_complete: u64,
    /// Latest simulated shard end time, milliseconds.
    pub end_time_ms: u64,
    /// The victim's HTML was recovered per the §II-A criterion (degree of
    /// multiplexing 0 **and** identified from the encrypted trace).
    pub victim_success: bool,
    /// The victim HTML's minimum degree of multiplexing.
    pub victim_degree: Option<f64>,
    /// The victim's connection broke.
    pub victim_broken: bool,
}

impl FleetRun {
    /// Aggregate simulator throughput of the run.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ms / 1e3)
    }
}

impl ToJson for FleetRun {
    fn to_json(&self) -> Json {
        object([
            ("label", self.label.to_json()),
            ("events", self.events.to_json()),
            ("shard_events", self.shard_events.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("events_per_sec", self.events_per_sec().to_json()),
            ("completed", (self.completed as u64).to_json()),
            ("broken", (self.broken as u64).to_json()),
            ("requests", self.requests.to_json()),
            ("requests_complete", self.requests_complete.to_json()),
            ("end_time_ms", self.end_time_ms.to_json()),
            ("victim_success", self.victim_success.to_json()),
            (
                "victim_degree",
                self.victim_degree
                    .map(|d| d.to_json())
                    .unwrap_or(Json::Null),
            ),
            ("victim_broken", self.victim_broken.to_json()),
        ])
    }
}

/// The whole exhibit: baseline and attacked populations.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Pairs per population.
    pub population: u32,
    /// Shards per population.
    pub shards: u32,
    /// Countermeasure deployed by the site ("none" = undefended).
    pub defense: &'static str,
    /// The undisturbed population.
    pub baseline: FleetRun,
    /// The population with the victim throttled at the gateway.
    pub attacked: FleetRun,
}

impl ToJson for FleetReport {
    fn to_json(&self) -> Json {
        object([
            ("population", (self.population as u64).to_json()),
            ("shards", (self.shards as u64).to_json()),
            ("defense", self.defense.to_json()),
            ("baseline", self.baseline.to_json()),
            ("attacked", self.attacked.to_json()),
        ])
    }
}

/// Scale-tuning knobs the `repro` CLI exposes for very large fleets. The
/// default (`None`/`false` everywhere) reproduces the pre-existing exhibit
/// byte-for-byte.
#[derive(Debug, Clone, Default)]
pub struct FleetTuning {
    /// Cohort streaming: bound resident pair-state to the in-flight set
    /// (`repro fleet --cohort N`).
    pub cohort: Option<u32>,
    /// Override the client start-spread window, seconds (`--spread SECS`).
    /// The shard deadline grows by the same amount so late starters keep
    /// the full per-pair time budget. A 1M-pair run needs this: the
    /// default 5 s window would put ~300k loads in flight at once.
    pub spread_secs: Option<u64>,
    /// Emit a stderr heartbeat (pairs done, events/sec, ETA) while the
    /// populations run (`--progress`). stdout is untouched.
    pub progress: bool,
}

fn fleet_config(population: u32, shards: u32, defense: DefenseSpec) -> FleetConfig {
    FleetConfig {
        seed: 0xF1EE7,
        population,
        shards,
        defense,
        conformance: if runner::conformance_enabled() {
            FleetConformance::for_population(population)
        } else {
            FleetConformance::Off
        },
        ..FleetConfig::default()
    }
}

fn tuned_config(
    population: u32,
    shards: u32,
    defense: DefenseSpec,
    tuning: &FleetTuning,
    progress: Option<Arc<FleetProgress>>,
) -> FleetConfig {
    let mut config = fleet_config(population, shards, defense);
    config.cohort = tuning.cohort;
    if let Some(secs) = tuning.spread_secs {
        let spread = SimDuration::from_secs(secs);
        config.deadline = spread + config.deadline;
        config.start_spread = spread;
    }
    config.progress = progress;
    config
}

/// The stderr heartbeat: a thread sampling the shared [`FleetProgress`]
/// counters every few seconds. Purely observational — the reporter reads
/// relaxed atomics the shard workers bump, so attaching it cannot change
/// any simulation result (and stdout stays byte-identical).
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(progress: Arc<FleetProgress>, total_pairs: u64) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let t0 = Instant::now();
        let handle = std::thread::Builder::new()
            .name("fleet-heartbeat".into())
            .spawn(move || loop {
                for _ in 0..20 {
                    if stop2.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                let done = progress.pairs_done.load(Ordering::Relaxed);
                let events = progress.events.load(Ordering::Relaxed);
                let shards = progress.shards_done.load(Ordering::Relaxed);
                let elapsed = t0.elapsed().as_secs_f64();
                let rate = events as f64 / elapsed.max(1e-9);
                let eta = if done > 0 && done < total_pairs {
                    let per_pair = elapsed / done as f64;
                    format!(", ~{:.0}s left", per_pair * (total_pairs - done) as f64)
                } else {
                    String::new()
                };
                eprintln!(
                    "[fleet] {done}/{total_pairs} pairs, {shards} shard(s) done, \
                     {events} events, {:.2}M ev/s{eta}",
                    rate / 1e6
                );
            })
            .expect("spawn heartbeat thread");
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn run_population(
    label: &'static str,
    config: &FleetConfig,
    attack: Option<&AttackConfig>,
    map: &h2priv_core::SizeMap,
) -> (FleetRun, FleetResult) {
    let vs = victim_shard(config);
    let t0 = Instant::now();
    // Shards fan out over the worker pool exactly like seeded trials: the
    // shard id is the "seed", results come back in shard order, and each
    // worker builds the victim's adversary locally (`Rc` is not Send; only
    // the plain-data snapshot leaves the worker).
    let results = runner::run_seeded(config.shards as u64, |shard| {
        let shard = shard as u32;
        let adversary = (shard == vs)
            .then(|| attack.map(|a| Rc::new(RefCell::new(Adversary::new(a.clone())))))
            .flatten();
        let result = run_fleet_shard(config, shard, adversary.clone().map(|a| Box::new(a) as _));
        let snapshot = adversary.map(|a| {
            let a = a.borrow();
            AdversarySnapshot {
                phase_log: a.phase_log().to_vec(),
                gets_seen: a.gets_seen(),
                drop_window_end: a.drop_window_end(),
                serialize_start: a.serialize_start(),
                gate_released_at: a.gate_released_at(),
                controller: a.controller_stats(),
            }
        });
        (result, snapshot)
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snapshot = results.iter().find_map(|(_, s)| s.clone());
    let results = results.into_iter().map(|(r, _)| r).collect();
    let merged = merge_shards(config.population, config.shards, results);

    runner::record_events(merged.events);
    runner::record_sched(&merged.sched);
    runner::record_violations(
        merged.violations_total,
        merged.violations.iter().map(|v| v.to_string()),
    );

    let victim = merged.victim.as_ref().expect("victim shard always runs");
    let iw = isidewith::build(&victim.golden_order);
    // The full attack analyzes the post-reset serialized window, exactly
    // like the single-pair table2 pipeline.
    let analysis_start = attack.and_then(|a| snapshot.as_ref().and_then(|s| s.analysis_start(a)));
    let analysis = analyze_capture(
        &victim.trace,
        &victim.truth,
        &iw,
        victim.broken,
        map,
        &[iw.html],
        analysis_start,
    );

    let run = FleetRun {
        label,
        events: merged.events,
        shard_events: merged.shard_events.clone(),
        wall_ms,
        completed: merged.completed,
        broken: merged.broken,
        requests: merged.requests,
        requests_complete: merged.requests_complete,
        end_time_ms: merged.end_time_max.as_millis(),
        victim_success: analysis.objects[0].success,
        victim_degree: analysis.objects[0].degree,
        victim_broken: analysis.broken,
    };
    (run, merged)
}

/// Runs the exhibit: one baseline population and one attacked population,
/// both under `defense` (fleet-wide padding; victim-side shaping).
/// Per Kerckhoffs' principle the adversary's size map is calibrated
/// against the defended server.
pub fn run(population: u32, shards: u32, defense: DefenseSpec) -> FleetReport {
    run_with(population, shards, defense, &FleetTuning::default())
}

/// [`run`] with the CLI's scale-tuning knobs (cohort streaming, start
/// spread, progress heartbeat).
pub fn run_with(
    population: u32,
    shards: u32,
    defense: DefenseSpec,
    tuning: &FleetTuning,
) -> FleetReport {
    let progress = tuning.progress.then(|| Arc::new(FleetProgress::default()));
    let config = tuned_config(population, shards, defense, tuning, progress.clone());
    // Two populations run back to back; the heartbeat tracks their sum.
    let _heartbeat = progress
        .clone()
        .map(|p| Heartbeat::start(p, 2 * population as u64));
    let map = if defense == DefenseSpec::None {
        calibrated_map()
    } else {
        let (iw, _) = h2priv_core::experiment::paper_scenario(0);
        let objects = h2priv_core::experiment::objects_of_interest(&iw);
        h2priv_core::experiment::calibrate_size_map_with(&objects, |cfg| cfg.defense = defense)
    };
    let (baseline, _) = run_population("baseline", &config, None, &map);
    let attack = AttackConfig::paper_attack();
    let (attacked, _) = run_population("attacked", &config, Some(&attack), &map);
    FleetReport {
        population,
        shards,
        defense: defense.name(),
        baseline,
        attacked,
    }
}

/// One thread-count point of the scale-out exhibit.
#[derive(Debug, Clone)]
pub struct ScaleoutPoint {
    /// Worker threads the shards fanned out over.
    pub threads: usize,
    /// Wall-clock for the baseline population, milliseconds.
    pub wall_ms: f64,
    /// Simulator events across all shards.
    pub events: u64,
    /// Aggregate throughput, events/second.
    pub events_per_sec: f64,
    /// Throughput per worker thread — flat means perfect scaling.
    pub ev_s_per_core: f64,
    /// Parallel efficiency vs. the 1-thread point (1.0 = linear speedup).
    pub efficiency: f64,
    /// Completed pairs (must not vary with the thread count).
    pub completed: u32,
}

impl ToJson for ScaleoutPoint {
    fn to_json(&self) -> Json {
        object([
            ("threads", (self.threads as u64).to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("events", self.events.to_json()),
            ("events_per_sec", self.events_per_sec.to_json()),
            ("ev_s_per_core", self.ev_s_per_core.to_json()),
            ("efficiency", self.efficiency.to_json()),
            ("completed", (self.completed as u64).to_json()),
        ])
    }
}

/// The scale-out exhibit: the same baseline fleet population executed at
/// each worker count in `thread_counts`, measuring aggregate events/sec
/// and parallel efficiency. Every point runs the *identical* shard set —
/// the partition is fixed by `shards`, not the thread count — so the
/// completed/broken rows must match across the whole curve (asserted
/// here), and only wall-clock moves.
///
/// Leaves the global worker-thread setting at `restore_threads` (0 =
/// auto).
pub fn scaleout(
    population: u32,
    shards: u32,
    defense: DefenseSpec,
    tuning: &FleetTuning,
    thread_counts: &[usize],
    restore_threads: usize,
) -> Vec<ScaleoutPoint> {
    let progress = tuning.progress.then(|| Arc::new(FleetProgress::default()));
    let config = tuned_config(population, shards, defense, tuning, progress.clone());
    let _heartbeat = progress
        .clone()
        .map(|p| Heartbeat::start(p, thread_counts.len() as u64 * population as u64));
    let map = calibrated_map();
    let mut points: Vec<ScaleoutPoint> = Vec::new();
    for &threads in thread_counts {
        runner::set_threads(threads);
        let t0 = Instant::now();
        let (run, _) = run_population("baseline", &config, None, &map);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let events_per_sec = run.events as f64 / (wall_ms / 1e3).max(1e-9);
        if let Some(first) = points.first() {
            assert_eq!(
                run.completed, first.completed,
                "thread count must not change outcomes"
            );
        }
        let efficiency = points
            .first()
            .map(|p| (events_per_sec / p.events_per_sec) / threads.max(1) as f64 * p.threads as f64)
            .unwrap_or(1.0);
        points.push(ScaleoutPoint {
            threads,
            wall_ms,
            events: run.events,
            events_per_sec,
            ev_s_per_core: events_per_sec / threads.max(1) as f64,
            efficiency,
            completed: run.completed,
        });
    }
    runner::set_threads(restore_threads);
    points
}

/// Renders the scale-out curve.
pub fn render_scaleout(population: u32, shards: u32, points: &[ScaleoutPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "FLEET SCALE-OUT: {population} pairs over {shards} shards, baseline population per thread count\n",
    ));
    out.push_str("| threads | wall ms | events | ev/s | ev/s per core | efficiency |\n");
    out.push_str("|--------:|--------:|-------:|-----:|--------------:|-----------:|\n");
    for p in points {
        out.push_str(&format!(
            "| {:>7} | {:>7.0} | {:>6} | {:>4.0} | {:>13.0} | {:>10.2} |\n",
            p.threads, p.wall_ms, p.events, p.events_per_sec, p.ev_s_per_core, p.efficiency
        ));
    }
    out.push_str(
        "(same shard partition at every thread count — outcome rows are identical, only\n \
         wall-clock moves; efficiency is speedup over the 1-thread point divided by threads)\n",
    );
    out
}

/// Renders the exhibit in the repro layout.
pub fn render(report: &FleetReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "FLEET: {} pairs over {} shards, victim = pair 0, defense: {}\n",
        report.population, report.shards, report.defense
    ));
    out.push_str(
        "| run      | completed | broken | requests done | victim degree | victim recovered |\n",
    );
    out.push_str(
        "|----------|----------:|-------:|--------------:|--------------:|-----------------:|\n",
    );
    for run in [&report.baseline, &report.attacked] {
        out.push_str(&format!(
            "| {:<8} | {:>9} | {:>6} | {:>7}/{:<5} | {:>13} | {:>16} |\n",
            run.label,
            run.completed,
            run.broken,
            run.requests_complete,
            run.requests,
            run.victim_degree
                .map(|d| format!("{d:.2}"))
                .unwrap_or_else(|| "-".to_owned()),
            if run.victim_success { "yes" } else { "no" },
        ));
    }
    out.push_str(
        "(recovery per the paper's criterion: degree of multiplexing 0 and size-identified;\n \
         the gateway throttles only the victim's flow — bystanders are untouched)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fleet_report_renders() {
        let report = run(12, 2, DefenseSpec::None);
        assert_eq!(report.population, 12);
        let s = render(&report);
        assert!(s.contains("baseline"));
        assert!(s.contains("attacked"));
        assert_eq!(report.baseline.shard_events.len(), 2);
        assert!(report.baseline.events > 0);
        // Whatever the victim verdicts, the runs must account for every pair.
        assert_eq!(
            report.baseline.completed + report.baseline.broken,
            report.population
        );
    }
}
