//! # h2priv-bench — the experiment harness
//!
//! Regenerates every table and figure of *"Depending on HTTP/2 for
//! Privacy? Good Luck!"* (DSN 2020) against the simulated substrates, one
//! module per exhibit:
//!
//! * [`fig1`] — the size-recovery concept (sequential vs multiplexed);
//! * [`table1`] — the §IV-B jitter sweep;
//! * [`fig5`] — the §IV-C bandwidth sweep;
//! * [`ivd`] — the §IV-D targeted-drop / forced-reset experiment;
//! * [`table2`] — the full §V attack's prediction accuracy;
//! * [`ablations`] — design-choice ablations and the §VII defense sketch;
//! * [`defend`] — the countermeasure arena: padding and shaping defenses
//!   evaluated against the full adversary grid (privacy vs. overhead);
//! * [`dos`] — the slow-rate DoS triad: attack workloads vs. server
//!   hardening vs. the online detector, standalone and at fleet scale;
//! * [`fleet`] — the population-scale contention run (N pairs sharing the
//!   gateway, victim throttled among bystanders), with cohort-streamed
//!   admission for million-pair sittings (`--cohort`/`--spread`/
//!   `--progress`) and the `scaleout` parallel-efficiency exhibit
//!   ([`fleet::scaleout`]: the same population at `--threads` 1/2/4/8,
//!   identical outcome rows asserted, ev/s-per-core curve recorded).
//!
//! The `repro` binary prints them in the paper's layout; `EXPERIMENTS.md`
//! records paper-vs-measured values. Criterion microbenches of the
//! substrates live under `benches/`.

#![warn(missing_docs)]

pub mod ablations;
pub mod common;
pub mod defend;
pub mod dos;
pub mod fig1;
pub mod fig5;
pub mod fleet;
pub mod harness;
pub mod ivd;
pub mod json;
pub mod runner;
pub mod table1;
pub mod table2;
