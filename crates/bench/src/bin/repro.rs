//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--json] [table1] [fig5] [ivd] [table2] [fig1] [ablations]
//! ```
//!
//! With no exhibit names, everything runs. `--quick` uses 25 trials per
//! point instead of the paper's 100.

use h2priv_bench::{ablations, common, fig1, fig5, ivd, table1, table2};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let trials = if quick {
        common::QUICK_TRIALS
    } else {
        common::TRIALS
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);

    if want("fig1") {
        let cases = fig1::run();
        if json {
            println!("{}", serde_json::to_string_pretty(&cases).unwrap());
        } else {
            println!("{}", fig1::render(&cases));
        }
    }
    if want("table1") {
        let rows = table1::run(trials);
        if json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!("{}", table1::render(&rows));
        }
    }
    if want("fig5") {
        let points = fig5::run(trials);
        if json {
            println!("{}", serde_json::to_string_pretty(&points).unwrap());
        } else {
            println!("{}", fig5::render(&points));
        }
    }
    if want("ivd") {
        let points = ivd::run(trials);
        if json {
            println!("{}", serde_json::to_string_pretty(&points).unwrap());
        } else {
            println!("{}", ivd::render(&points));
        }
    }
    if want("table2") {
        let cols = table2::run(trials);
        if json {
            println!("{}", serde_json::to_string_pretty(&cols).unwrap());
        } else {
            println!("{}", table2::render(&cols));
            let (lo, hi) = table2::baseline_image_degrees(trials.min(30));
            println!("(baseline degree of multiplexing of the emblem images: {lo:.0}%–{hi:.0}%)\n");
        }
    }
    if want("ablations") {
        let rows = ablations::run(trials.min(40));
        if json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!("{}", ablations::render(&rows));
        }
    }
}
