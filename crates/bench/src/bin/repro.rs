//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--json] [--check] [--threads N] [--trials N]
//!       [--population N] [--shards N] [--defense NAME] [--bench-json[=PATH]]
//!       [--cohort N] [--spread SECS] [--progress]
//!       [table1] [fig5] [ivd] [table2] [fig1] [ablations] [defend] [dos]
//!       [fleet] [scaleout]
//! ```
//!
//! With no exhibit names, everything runs. `--quick` uses 25 trials per
//! point instead of the paper's 100; `--trials N` overrides both. Trials
//! fan out over `--threads N` workers (default: available parallelism);
//! any thread count produces byte-identical stdout, because results are
//! collected in seed order. Per-exhibit wall-clock and events/sec lines go
//! to stderr, and `--bench-json` additionally records them in
//! `BENCH_repro.json` (or the given path) so the perf trajectory is
//! tracked across changes.
//!
//! The `fleet` exhibit simulates `--population N` client–server pairs
//! (default 1000, `--quick` 128) split over `--shards N` independent
//! engines (default 8). Shards fan out over the same worker pool; the
//! shard count — not the thread count — fixes the partition, so fleet
//! output is also byte-identical at any `--threads`. Million-pair runs
//! use `--cohort N` (stream pair state in bounded cohorts instead of
//! materializing whole shards — peak memory follows the in-flight set),
//! `--spread SECS` (widen the start-stagger window so fewer loads overlap;
//! the shard deadline grows by the same amount) and `--progress` (a stderr
//! heartbeat with pairs done, events/sec and ETA; stdout is untouched).
//!
//! The `scaleout` exhibit (explicit request only — it is a measurement
//! harness, not a paper artifact, and re-runs the baseline population once
//! per thread count) executes the same fleet at `--threads` 1/2/4/8 and
//! reports aggregate events/sec, events/sec **per core** and parallel
//! efficiency.
//!
//! The `defend` exhibit runs the countermeasure arena: every defense in
//! `DefenseSpec::arena` against the escalating adversary grid, reporting
//! attack success and byte/latency overhead per cell. `--defense NAME`
//! narrows it to `[none, NAME]` (the baseline stays so overheads are
//! well-defined) and also deploys NAME fleet-wide in the `fleet` exhibit.
//!
//! `--check` attaches the cross-layer conformance oracle
//! (`h2priv-conformance`) to every trial: TCP, TLS and HTTP/2 invariants
//! are validated on every segment, record and frame, a summary goes to
//! stderr, and the process exits nonzero if any trial violated any
//! invariant. Exhibit output is unchanged — the oracle only observes.

use std::time::Instant;

use h2priv_bench::json::{object, Json, ToJson};
use h2priv_bench::{
    ablations, common, defend, dos, fig1, fig5, fleet, ivd, runner, table1, table2,
};
use h2priv_bytes::count_alloc;
use h2priv_defense::DefenseSpec;

/// The byte-gauging allocator: two relaxed atomics per allocator call buy
/// the `peak_alloc_bytes` / `bytes_per_pair` memory telemetry reported in
/// `--bench-json` and gated by `scripts/bench_check.sh`.
#[global_allocator]
static ALLOC: count_alloc::CountingAlloc = count_alloc::CountingAlloc;

/// Per-exhibit wall-clock record emitted by `--bench-json`.
struct ExhibitTiming {
    exhibit: &'static str,
    trials: u64,
    threads: usize,
    wall_ms: f64,
    events: u64,
    /// Event-scheduler behaviour over the exhibit's trials (tier split,
    /// promotions, peak bucket/overflow occupancy), so baselines are
    /// self-describing about which scheduler produced them. For the fleet
    /// exhibit the peaks are summed across concurrently-resident shards
    /// (`SchedStats::merge_concurrent`), not maxed.
    sched: h2priv_netsim::SchedStats,
    /// Per-shard event counts (fleet exhibit only; empty otherwise) —
    /// the shard occupancy balance.
    shard_events: Vec<u64>,
    /// High-water mark of live heap bytes while the exhibit ran (how far
    /// the process-wide gauge rose above its level at exhibit entry).
    peak_alloc_bytes: u64,
    /// Fleet exhibit only: `peak_alloc_bytes` divided by the number of
    /// pairs co-resident at once (population scaled by how many shards the
    /// worker pool keeps in flight together) — the per-pair working set
    /// the memory-regression gate pins. Zero for non-fleet exhibits.
    bytes_per_pair: u64,
}

impl ExhibitTiming {
    fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ms / 1e3)
    }

    /// Aggregate throughput divided by the worker-thread count — the
    /// scale-out health number: flat across `--threads` means the shards
    /// parallelize without stepping on each other.
    fn ev_s_per_core(&self) -> f64 {
        self.events_per_sec() / self.threads.max(1) as f64
    }
}

impl ToJson for ExhibitTiming {
    fn to_json(&self) -> Json {
        object([
            ("exhibit", self.exhibit.to_json()),
            ("trials", self.trials.to_json()),
            ("threads", self.threads.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("events", self.events.to_json()),
            ("events_per_sec", self.events_per_sec().to_json()),
            ("ev_s_per_core", self.ev_s_per_core().to_json()),
            ("scheduler", h2priv_netsim::SchedStats::SCHEDULER.to_json()),
            ("sched_near_inserts", self.sched.near_inserts.to_json()),
            ("sched_far_inserts", self.sched.far_inserts.to_json()),
            ("sched_promotions", self.sched.promotions.to_json()),
            ("sched_rebases", self.sched.rebases.to_json()),
            ("sched_peak_near", self.sched.peak_near.to_json()),
            ("sched_peak_overflow", self.sched.peak_overflow.to_json()),
            ("shard_events", self.shard_events.to_json()),
            ("peak_alloc_bytes", self.peak_alloc_bytes.to_json()),
            ("bytes_per_pair", self.bytes_per_pair.to_json()),
        ])
    }
}

fn parse_flag_value(args: &[String], flag: &str) -> Option<u64> {
    parse_flag_str(args, flag).and_then(|v| v.parse().ok())
}

fn parse_flag_str(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_owned());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");
    runner::set_conformance(check);
    let bench_json: Option<String> = args.iter().find_map(|a| {
        if a == "--bench-json" {
            Some("BENCH_repro.json".to_owned())
        } else {
            a.strip_prefix("--bench-json=").map(str::to_owned)
        }
    });
    if let Some(threads) = parse_flag_value(&args, "--threads") {
        runner::set_threads(threads as usize);
    }
    let trials = parse_flag_value(&args, "--trials").unwrap_or(if quick {
        common::QUICK_TRIALS
    } else {
        common::TRIALS
    });
    let population =
        parse_flag_value(&args, "--population").unwrap_or(if quick { 128 } else { 1_000 }) as u32;
    let shards = parse_flag_value(&args, "--shards").unwrap_or(8).max(1) as u32;
    let tuning = fleet::FleetTuning {
        cohort: parse_flag_value(&args, "--cohort").map(|c| c.max(1) as u32),
        spread_secs: parse_flag_value(&args, "--spread"),
        progress: args.iter().any(|a| a == "--progress"),
    };
    let defense = match parse_flag_str(&args, "--defense") {
        Some(name) => match DefenseSpec::parse(&name) {
            Some(spec) => Some(spec),
            None => {
                let names: Vec<&str> = DefenseSpec::arena().iter().map(|d| d.name()).collect();
                eprintln!("unknown defense {name:?}; valid: {}", names.join(", "));
                std::process::exit(1);
            }
        },
        None => None,
    };
    let wanted: Vec<&str> = {
        // Skip flags and their detached values.
        let mut names = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if a == "--threads"
                || a == "--trials"
                || a == "--population"
                || a == "--shards"
                || a == "--defense"
                || a == "--cohort"
                || a == "--spread"
            {
                it.next();
            } else if !a.starts_with("--") {
                names.push(a.as_str());
            }
        }
        names
    };
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);

    let threads = runner::threads();
    let mut timings: Vec<ExhibitTiming> = Vec::new();
    let mut timed = |exhibit: &'static str, trials: u64, body: &mut dyn FnMut()| {
        let events_before = runner::events_snapshot();
        runner::sched_take(); // reset so the exhibit reports only its own
        let t0 = Instant::now();
        let ((), peak_alloc_bytes) = count_alloc::measure_peak_bytes(body);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let events = runner::events_snapshot() - events_before;
        let timing = ExhibitTiming {
            exhibit,
            trials,
            threads,
            wall_ms,
            events,
            sched: runner::sched_take(),
            shard_events: Vec::new(),
            peak_alloc_bytes,
            bytes_per_pair: 0,
        };
        eprintln!(
            "[timing] {exhibit}: {wall_ms:.0} ms, {events} events, {:.0} events/sec, {threads} thread(s), peak {:.1} MiB",
            timing.events_per_sec(),
            peak_alloc_bytes as f64 / (1024.0 * 1024.0)
        );
        timings.push(timing);
    };

    if want("fig1") {
        timed("fig1", 1, &mut || {
            let cases = fig1::run();
            if json {
                println!("{}", h2priv_bench::json::to_string_pretty(&cases));
            } else {
                println!("{}", fig1::render(&cases));
            }
        });
    }
    if want("table1") {
        timed("table1", trials, &mut || {
            let rows = table1::run(trials);
            if json {
                println!("{}", h2priv_bench::json::to_string_pretty(&rows));
            } else {
                println!("{}", table1::render(&rows));
            }
        });
    }
    if want("fig5") {
        timed("fig5", trials, &mut || {
            let points = fig5::run(trials);
            if json {
                println!("{}", h2priv_bench::json::to_string_pretty(&points));
            } else {
                println!("{}", fig5::render(&points));
            }
        });
    }
    if want("ivd") {
        timed("ivd", trials, &mut || {
            let points = ivd::run(trials);
            if json {
                println!("{}", h2priv_bench::json::to_string_pretty(&points));
            } else {
                println!("{}", ivd::render(&points));
            }
        });
    }
    if want("table2") {
        timed("table2", trials, &mut || {
            let cols = table2::run(trials);
            if json {
                println!("{}", h2priv_bench::json::to_string_pretty(&cols));
            } else {
                println!("{}", table2::render(&cols));
                let (lo, hi) = table2::baseline_image_degrees(trials.min(30));
                println!(
                    "(baseline degree of multiplexing of the emblem images: {lo:.0}%–{hi:.0}%)\n"
                );
            }
        });
    }
    if want("ablations") {
        timed("ablations", trials.min(40), &mut || {
            let rows = ablations::run(trials.min(40));
            if json {
                println!("{}", h2priv_bench::json::to_string_pretty(&rows));
            } else {
                println!("{}", ablations::render(&rows));
            }
        });
    }
    if want("defend") {
        // The frontier is 4 adversary cells per defense; cap per-cell
        // trials like the ablation sweep does.
        let defend_trials = trials.min(25);
        // A chosen defense still runs next to the undefended baseline so
        // the overhead columns keep their denominator.
        let defenses: Vec<DefenseSpec> = match defense {
            Some(spec) if spec != DefenseSpec::None => vec![DefenseSpec::None, spec],
            _ => DefenseSpec::arena().to_vec(),
        };
        timed(
            "defend",
            defend_trials * defenses.len() as u64 * 4,
            &mut || {
                let cells = defend::run_subset(defend_trials, &defenses);
                if json {
                    println!("{}", h2priv_bench::json::to_string_pretty(&cells));
                } else {
                    println!("{}", defend::render(&cells));
                }
            },
        );
    }
    if want("dos") {
        // The attack grid and fleet runs are fixed-size; trials scale only
        // the false-positive sweep, capped like the other secondary grids.
        let dos_trials = trials.min(25);
        timed("dos", dos_trials, &mut || {
            let report = dos::run(dos_trials);
            if json {
                println!("{}", h2priv_bench::json::to_string_pretty(&report));
            } else {
                println!("{}", dos::render(&report));
            }
        });
    }
    if want("fleet") {
        let mut report = None;
        timed("fleet", population as u64, &mut || {
            let r = fleet::run_with(
                population,
                shards,
                defense.unwrap_or(DefenseSpec::None),
                &tuning,
            );
            if json {
                println!("{}", h2priv_bench::json::to_string_pretty(&r));
            } else {
                println!("{}", fleet::render(&r));
            }
            report = Some(r);
        });
        if let (Some(r), Some(t)) = (report, timings.last_mut()) {
            // Shard occupancy over both populations (baseline + attacked),
            // element-wise: the balance the hash partition achieved.
            t.shard_events = r
                .baseline
                .shard_events
                .iter()
                .zip(&r.attacked.shard_events)
                .map(|(a, b)| a + b)
                .collect();
            // Per-pair working set: the peak divided by how many pairs were
            // co-resident when it was reached. Shards run `min(threads,
            // shards)` at a time and hold `population / shards` pairs each.
            let co_resident =
                (population as u64 * threads.min(shards as usize) as u64 / shards as u64).max(1);
            t.bytes_per_pair = t.peak_alloc_bytes / co_resident;
            eprintln!(
                "[timing] fleet memory: peak_alloc_bytes {} ({:.1} MiB), {} bytes/pair over {} co-resident pair(s)",
                t.peak_alloc_bytes,
                t.peak_alloc_bytes as f64 / (1024.0 * 1024.0),
                t.bytes_per_pair,
                co_resident
            );
        }
    }

    // Explicit request only (never part of the run-everything default):
    // scaleout re-executes the baseline population once per thread count,
    // overriding --threads point by point, purely to measure parallel
    // efficiency.
    if wanted.contains(&"scaleout") {
        let restore = parse_flag_value(&args, "--threads").unwrap_or(0) as usize;
        let points = fleet::scaleout(
            population,
            shards,
            defense.unwrap_or(DefenseSpec::None),
            &tuning,
            &[1, 2, 4, 8],
            restore,
        );
        if json {
            println!("{}", h2priv_bench::json::to_string_pretty(&points));
        } else {
            println!("{}", fleet::render_scaleout(population, shards, &points));
        }
        // One timing row per thread count, so `--bench-json` carries the
        // whole scaling curve (`ev_s_per_core` is derived per row).
        for p in &points {
            eprintln!(
                "[timing] scaleout --threads {}: {:.0} ms, {:.0} ev/s aggregate, {:.0} ev/s per core, efficiency {:.2}",
                p.threads, p.wall_ms, p.events_per_sec, p.ev_s_per_core, p.efficiency
            );
            timings.push(ExhibitTiming {
                exhibit: "scaleout",
                trials: population as u64,
                threads: p.threads,
                wall_ms: p.wall_ms,
                events: p.events,
                sched: Default::default(),
                shard_events: Vec::new(),
                peak_alloc_bytes: 0,
                bytes_per_pair: 0,
            });
        }
    }

    if let Some(path) = bench_json {
        let body = h2priv_bench::json::to_string_pretty(&timings);
        match std::fs::write(&path, body + "\n") {
            Ok(()) => eprintln!("[timing] wrote {path}"),
            Err(err) => eprintln!("[timing] failed to write {path}: {err}"),
        }
    }

    if check {
        let violations = runner::violations_snapshot();
        if violations == 0 {
            eprintln!("[conformance] all trials clean: no protocol invariant violations");
        } else {
            eprintln!("[conformance] {violations} violation(s) detected:");
            for sample in runner::violation_samples() {
                eprintln!("[conformance]   {sample}");
            }
            std::process::exit(2);
        }
    }
}
