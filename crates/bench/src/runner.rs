//! Parallel trial execution.
//!
//! Every experimental point in the reproduction runs N independent seeded
//! trials. Each trial is a fully self-contained deterministic simulation,
//! so the batch is embarrassingly parallel — the only requirement is that
//! results are collected **in seed order**, which makes every downstream
//! summary bit-identical to a serial run regardless of worker count or
//! scheduling.
//!
//! [`run_seeded`] fans seeds out over a **persistent** worker pool
//! pulling from a shared atomic work index; each worker writes its result
//! into the seed's dedicated slot. The pool spawns its OS threads once and
//! reuses them for every subsequent batch — a `repro` invocation runs
//! hundreds of `run_seeded` calls, and per-call `thread::scope` spawning
//! was measurable setup noise at small trial counts ([`threads_spawned`]
//! is the regression assertion for this). The worker count per batch comes
//! from [`threads`] — settable once per process via [`set_threads`] (the
//! `repro` binary's `--threads` flag), defaulting to the machine's
//! available parallelism.
//!
//! The module also owns the run-wide simulator-event counter feeding the
//! `events/sec` throughput instrumentation: batches report the events
//! their trials processed via [`record_events`], and the `repro` binary
//! diffs [`events_snapshot`] around each exhibit.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use h2priv_netsim::SchedStats;

/// Configured worker count; 0 = auto (available parallelism).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Simulator events processed by trials run through this module.
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Run-wide event-scheduler counters (tier split, promotions, peak
/// occupancy), merged across trials. Counters accumulate with `fetch_add`,
/// peaks with `fetch_max`; [`sched_take`] drains them per exhibit.
static SCHED_NEAR_INSERTS: AtomicU64 = AtomicU64::new(0);
static SCHED_FAR_INSERTS: AtomicU64 = AtomicU64::new(0);
static SCHED_PROMOTIONS: AtomicU64 = AtomicU64::new(0);
static SCHED_REBASES: AtomicU64 = AtomicU64::new(0);
static SCHED_PEAK_NEAR: AtomicU64 = AtomicU64::new(0);
static SCHED_PEAK_OVERFLOW: AtomicU64 = AtomicU64::new(0);

/// Whether trials run with the conformance oracle (the `--check` flag).
/// Off by default so the perf baseline measures the stacks, not the
/// checkers.
static CONFORMANCE: AtomicBool = AtomicBool::new(false);

/// Conformance violations reported by checked trials.
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// A few stored violation details for the end-of-run diagnostic.
static VIOLATION_SAMPLES: Mutex<Vec<String>> = Mutex::new(Vec::new());
const MAX_VIOLATION_SAMPLES: usize = 16;

/// Turns the conformance oracle on/off for all subsequent trials.
pub fn set_conformance(on: bool) {
    CONFORMANCE.store(on, Ordering::SeqCst);
}

/// True when trials should run with the conformance oracle attached.
pub fn conformance_enabled() -> bool {
    CONFORMANCE.load(Ordering::SeqCst)
}

/// Adds `total` violations to the run-wide counter, keeping the first few
/// `details` for diagnostics.
pub fn record_violations(total: u64, details: impl IntoIterator<Item = String>) {
    if total == 0 {
        return;
    }
    VIOLATIONS.fetch_add(total, Ordering::Relaxed);
    let mut samples = VIOLATION_SAMPLES.lock().expect("samples lock poisoned");
    for d in details {
        if samples.len() >= MAX_VIOLATION_SAMPLES {
            break;
        }
        samples.push(d);
    }
}

/// Total conformance violations recorded so far.
pub fn violations_snapshot() -> u64 {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// The stored violation details (at most a small sample).
pub fn violation_samples() -> Vec<String> {
    VIOLATION_SAMPLES
        .lock()
        .expect("samples lock poisoned")
        .clone()
}

/// Sets the worker-pool size for all subsequent batches (0 = auto).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::SeqCst);
}

/// The effective worker-pool size: the configured value, or the machine's
/// available parallelism when unset.
pub fn threads() -> usize {
    match THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Adds `n` simulator events to the run-wide throughput counter.
pub fn record_events(n: u64) {
    EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// Total simulator events recorded so far (diff around an exhibit to get
/// its event count).
pub fn events_snapshot() -> u64 {
    EVENTS.load(Ordering::Relaxed)
}

/// Merges one trial's scheduler counters into the run-wide accumulator.
pub fn record_sched(stats: &SchedStats) {
    SCHED_NEAR_INSERTS.fetch_add(stats.near_inserts, Ordering::Relaxed);
    SCHED_FAR_INSERTS.fetch_add(stats.far_inserts, Ordering::Relaxed);
    SCHED_PROMOTIONS.fetch_add(stats.promotions, Ordering::Relaxed);
    SCHED_REBASES.fetch_add(stats.rebases, Ordering::Relaxed);
    SCHED_PEAK_NEAR.fetch_max(stats.peak_near, Ordering::Relaxed);
    SCHED_PEAK_OVERFLOW.fetch_max(stats.peak_overflow, Ordering::Relaxed);
}

/// Drains the scheduler accumulator, returning everything recorded since
/// the previous take. Exhibits run sequentially, so taking around each one
/// yields per-exhibit stats (peaks included — a plain snapshot diff could
/// not reset the maxima).
pub fn sched_take() -> SchedStats {
    SchedStats {
        near_inserts: SCHED_NEAR_INSERTS.swap(0, Ordering::Relaxed),
        far_inserts: SCHED_FAR_INSERTS.swap(0, Ordering::Relaxed),
        promotions: SCHED_PROMOTIONS.swap(0, Ordering::Relaxed),
        rebases: SCHED_REBASES.swap(0, Ordering::Relaxed),
        peak_near: SCHED_PEAK_NEAR.swap(0, Ordering::Relaxed),
        peak_overflow: SCHED_PEAK_OVERFLOW.swap(0, Ordering::Relaxed),
    }
}

/// A batch job handed to the persistent pool. Jobs are lifetime-erased to
/// `'static`; [`run_seeded`]'s completion latch is what makes that sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide worker pool: a plain mutex-guarded job queue and
/// parked OS threads. Workers are spawned on demand up to the largest
/// batch width ever requested and then live for the process — batches
/// enqueue jobs instead of spawning.
struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// OS threads spawned over the process lifetime (the pool-reuse
    /// regression metric).
    spawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

impl Pool {
    fn ensure_workers(&'static self, want: usize) {
        let have = self.spawned.load(Ordering::Relaxed);
        for _ in have..want {
            self.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name("repro-worker".into())
                .spawn(move || self.worker_loop())
                .expect("spawn pool worker");
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("pool queue poisoned");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    queue = self.available.wait(queue).expect("pool queue poisoned");
                }
            };
            // A panicking job must not kill the worker: the batch's latch
            // guard reports the panic to its submitter, and this thread
            // goes back to the queue for the next batch.
            let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
        }
    }

    fn submit(&self, job: Job) {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
        self.available.notify_one();
    }
}

/// OS worker threads spawned by [`run_seeded`] over the process lifetime.
/// Stays flat across repeated batches — the pool-reuse regression
/// assertion.
pub fn threads_spawned() -> usize {
    pool().spawned.load(Ordering::Relaxed)
}

/// Completion latch for one batch: counts finished jobs and remembers
/// whether any of them panicked.
struct Latch {
    state: Mutex<(usize, bool)>,
    done: Condvar,
}

/// Counts a job as finished on drop — including drops during unwinding,
/// which is what keeps [`run_seeded`]'s wait loop (and the soundness
/// argument below) intact when a trial panics.
struct LatchGuard<'a>(&'a Latch);

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        let mut state = self
            .0
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.0 += 1;
        if std::thread::panicking() {
            state.1 = true;
        }
        self.0.done.notify_all();
    }
}

/// Runs `f(seed)` for every seed in `0..n`, fanning out across the
/// persistent worker pool, and returns the results **ordered by seed** —
/// bit-identical to `(0..n).map(f).collect()` because every trial derives
/// all randomness from its own seed.
///
/// Panics if any trial panicked (after every in-flight job of the batch
/// has finished).
pub fn run_seeded<T, F>(n: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = threads()
        .min(usize::try_from(n).unwrap_or(usize::MAX))
        .max(1);
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // One slot per seed; workers race only on the shared work index, never
    // on each other's slots.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicU64::new(0);
    let latch = Latch {
        state: Mutex::new((0, false)),
        done: Condvar::new(),
    };
    let pool = pool();
    pool.ensure_workers(workers);
    for _ in 0..workers {
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
            // The guard counts this job finished even if `f` panics.
            let _guard = LatchGuard(&latch);
            loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= n {
                    break;
                }
                let out = f(seed);
                *slots[seed as usize].lock().expect("slot lock poisoned") = Some(out);
            }
        });
        // SAFETY: the job borrows only locals of this call (`f`, `slots`,
        // `next`, `latch`). Erasing its lifetime is sound because this
        // function does not return — normally or by panic — until the
        // latch below has counted every submitted job, and a job's guard
        // only fires after its last use of those borrows (the captured
        // references themselves are dropped without being dereferenced).
        // This is the standard scoped-pool pattern, with the latch playing
        // the role of `thread::scope`'s join.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
        pool.submit(job);
    }
    let mut state = latch.state.lock().expect("latch poisoned");
    while state.0 < workers {
        state = latch.done.wait(state).expect("latch poisoned");
    }
    let panicked = state.1;
    drop(state);
    if panicked {
        panic!("a run_seeded trial panicked (see worker output above)");
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_seed_ordered() {
        let out = run_seeded(100, |seed| seed * 3);
        assert_eq!(out, (0..100).map(|s| s * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_trial_edge_cases() {
        assert_eq!(run_seeded(0, |s| s), Vec::<u64>::new());
        assert_eq!(run_seeded(1, |s| s), vec![0]);
    }

    #[test]
    fn events_counter_accumulates() {
        let before = events_snapshot();
        record_events(123);
        assert_eq!(events_snapshot() - before, 123);
    }

    #[test]
    fn threads_default_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn worker_pool_is_reused_across_batches() {
        // Warm the pool to the machine's full width (the most any
        // concurrently-running test can demand), then verify that repeated
        // batches run on the same OS threads instead of spawning new ones.
        let _ = run_seeded(2 * threads() as u64, |s| s);
        let before = threads_spawned();
        for _ in 0..5 {
            let out = run_seeded(64, |s| s * 2);
            assert_eq!(out[63], 126);
        }
        assert_eq!(
            threads_spawned(),
            before,
            "run_seeded must reuse the persistent pool, not respawn workers"
        );
    }

    #[test]
    fn trial_panic_propagates_after_the_batch_drains() {
        let result = std::panic::catch_unwind(|| {
            run_seeded(8, |seed| {
                if seed == 3 {
                    panic!("boom");
                }
                seed
            })
        });
        assert!(result.is_err(), "a panicking trial must fail the batch");
        // The pool survives the panic and keeps serving batches.
        assert_eq!(run_seeded(4, |s| s + 1), vec![1, 2, 3, 4]);
    }
}
