//! Parallel trial execution.
//!
//! Every experimental point in the reproduction runs N independent seeded
//! trials. Each trial is a fully self-contained deterministic simulation,
//! so the batch is embarrassingly parallel — the only requirement is that
//! results are collected **in seed order**, which makes every downstream
//! summary bit-identical to a serial run regardless of worker count or
//! scheduling.
//!
//! [`run_seeded`] fans seeds out over a `std::thread::scope` worker pool
//! pulling from a shared atomic work index; each worker writes its result
//! into the seed's dedicated slot. The pool size comes from
//! [`threads`] — settable once per process via [`set_threads`] (the
//! `repro` binary's `--threads` flag), defaulting to the machine's
//! available parallelism.
//!
//! The module also owns the run-wide simulator-event counter feeding the
//! `events/sec` throughput instrumentation: batches report the events
//! their trials processed via [`record_events`], and the `repro` binary
//! diffs [`events_snapshot`] around each exhibit.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use h2priv_netsim::SchedStats;

/// Configured worker count; 0 = auto (available parallelism).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Simulator events processed by trials run through this module.
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Run-wide event-scheduler counters (tier split, promotions, peak
/// occupancy), merged across trials. Counters accumulate with `fetch_add`,
/// peaks with `fetch_max`; [`sched_take`] drains them per exhibit.
static SCHED_NEAR_INSERTS: AtomicU64 = AtomicU64::new(0);
static SCHED_FAR_INSERTS: AtomicU64 = AtomicU64::new(0);
static SCHED_PROMOTIONS: AtomicU64 = AtomicU64::new(0);
static SCHED_REBASES: AtomicU64 = AtomicU64::new(0);
static SCHED_PEAK_NEAR: AtomicU64 = AtomicU64::new(0);
static SCHED_PEAK_OVERFLOW: AtomicU64 = AtomicU64::new(0);

/// Whether trials run with the conformance oracle (the `--check` flag).
/// Off by default so the perf baseline measures the stacks, not the
/// checkers.
static CONFORMANCE: AtomicBool = AtomicBool::new(false);

/// Conformance violations reported by checked trials.
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// A few stored violation details for the end-of-run diagnostic.
static VIOLATION_SAMPLES: Mutex<Vec<String>> = Mutex::new(Vec::new());
const MAX_VIOLATION_SAMPLES: usize = 16;

/// Turns the conformance oracle on/off for all subsequent trials.
pub fn set_conformance(on: bool) {
    CONFORMANCE.store(on, Ordering::SeqCst);
}

/// True when trials should run with the conformance oracle attached.
pub fn conformance_enabled() -> bool {
    CONFORMANCE.load(Ordering::SeqCst)
}

/// Adds `total` violations to the run-wide counter, keeping the first few
/// `details` for diagnostics.
pub fn record_violations(total: u64, details: impl IntoIterator<Item = String>) {
    if total == 0 {
        return;
    }
    VIOLATIONS.fetch_add(total, Ordering::Relaxed);
    let mut samples = VIOLATION_SAMPLES.lock().expect("samples lock poisoned");
    for d in details {
        if samples.len() >= MAX_VIOLATION_SAMPLES {
            break;
        }
        samples.push(d);
    }
}

/// Total conformance violations recorded so far.
pub fn violations_snapshot() -> u64 {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// The stored violation details (at most a small sample).
pub fn violation_samples() -> Vec<String> {
    VIOLATION_SAMPLES
        .lock()
        .expect("samples lock poisoned")
        .clone()
}

/// Sets the worker-pool size for all subsequent batches (0 = auto).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::SeqCst);
}

/// The effective worker-pool size: the configured value, or the machine's
/// available parallelism when unset.
pub fn threads() -> usize {
    match THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Adds `n` simulator events to the run-wide throughput counter.
pub fn record_events(n: u64) {
    EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// Total simulator events recorded so far (diff around an exhibit to get
/// its event count).
pub fn events_snapshot() -> u64 {
    EVENTS.load(Ordering::Relaxed)
}

/// Merges one trial's scheduler counters into the run-wide accumulator.
pub fn record_sched(stats: &SchedStats) {
    SCHED_NEAR_INSERTS.fetch_add(stats.near_inserts, Ordering::Relaxed);
    SCHED_FAR_INSERTS.fetch_add(stats.far_inserts, Ordering::Relaxed);
    SCHED_PROMOTIONS.fetch_add(stats.promotions, Ordering::Relaxed);
    SCHED_REBASES.fetch_add(stats.rebases, Ordering::Relaxed);
    SCHED_PEAK_NEAR.fetch_max(stats.peak_near, Ordering::Relaxed);
    SCHED_PEAK_OVERFLOW.fetch_max(stats.peak_overflow, Ordering::Relaxed);
}

/// Drains the scheduler accumulator, returning everything recorded since
/// the previous take. Exhibits run sequentially, so taking around each one
/// yields per-exhibit stats (peaks included — a plain snapshot diff could
/// not reset the maxima).
pub fn sched_take() -> SchedStats {
    SchedStats {
        near_inserts: SCHED_NEAR_INSERTS.swap(0, Ordering::Relaxed),
        far_inserts: SCHED_FAR_INSERTS.swap(0, Ordering::Relaxed),
        promotions: SCHED_PROMOTIONS.swap(0, Ordering::Relaxed),
        rebases: SCHED_REBASES.swap(0, Ordering::Relaxed),
        peak_near: SCHED_PEAK_NEAR.swap(0, Ordering::Relaxed),
        peak_overflow: SCHED_PEAK_OVERFLOW.swap(0, Ordering::Relaxed),
    }
}

/// Runs `f(seed)` for every seed in `0..n`, fanning out across the worker
/// pool, and returns the results **ordered by seed** — bit-identical to
/// `(0..n).map(f).collect()` because every trial derives all randomness
/// from its own seed.
pub fn run_seeded<T, F>(n: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = threads()
        .min(usize::try_from(n).unwrap_or(usize::MAX))
        .max(1);
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // One slot per seed; workers race only on the shared work index, never
    // on each other's slots.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= n {
                    break;
                }
                let out = f(seed);
                *slots[seed as usize].lock().expect("slot lock poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_seed_ordered() {
        let out = run_seeded(100, |seed| seed * 3);
        assert_eq!(out, (0..100).map(|s| s * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_trial_edge_cases() {
        assert_eq!(run_seeded(0, |s| s), Vec::<u64>::new());
        assert_eq!(run_seeded(1, |s| s), vec![0]);
    }

    #[test]
    fn events_counter_accumulates() {
        let before = events_snapshot();
        record_events(123);
        assert_eq!(events_snapshot() - before, 123);
    }

    #[test]
    fn threads_default_is_positive() {
        assert!(threads() >= 1);
    }
}
