//! §IV-D — "Targeted packet drops: forcing HTTP/2 stream reset".
//!
//! Paper experiment: with jitter and throttling active, drop 80 % of
//! server→client application packets from the 6th GET onward (6 s window)
//! to force the client's `RST_STREAM`; the re-requested HTML was then
//! transmitted un-multiplexed in ≈ 90 % of 100 trials. Raising the drop
//! rate further broke the connection.
//!
//! This bench sweeps the drop rate through and past the paper's operating
//! point, reporting the reset rate, the success rate, and breakage.

use h2priv_core::AttackConfig;

use crate::common::{calibrated_map, run_batch};
use crate::json::{object, Json, ToJson};

/// One drop-rate point.
#[derive(Debug, Clone)]
pub struct IvdPoint {
    /// Drop probability, percent.
    pub drop_pct: u16,
    /// Trials where the client reset the HTML stream, percent.
    pub reset_pct: f64,
    /// Trials where the HTML came out un-multiplexed and identified,
    /// percent (the paper's ≈ 90 % success).
    pub success_pct: f64,
    /// Trials whose connection broke, percent.
    pub broken_pct: f64,
}

impl ToJson for IvdPoint {
    fn to_json(&self) -> Json {
        object([
            ("drop_pct", self.drop_pct.to_json()),
            ("reset_pct", self.reset_pct.to_json()),
            ("success_pct", self.success_pct.to_json()),
            ("broken_pct", self.broken_pct.to_json()),
        ])
    }
}

/// The sweep: no drops, a sub-threshold rate, the paper's 80 %, and
/// aggressive rates beyond it.
pub const DROP_PCTS: [u16; 5] = [0, 40, 80, 95, 99];

/// Regenerates the §IV-D experiment with `trials` downloads per point.
pub fn run(trials: u64) -> Vec<IvdPoint> {
    let map = calibrated_map();
    DROP_PCTS
        .iter()
        .map(|&drop| {
            let mut attack = AttackConfig::paper_attack();
            attack.drop_rate_per_mille = drop * 10;
            if drop == 0 {
                // Without drops there is no disruption window to time out:
                // the trigger degenerates to jitter + throttle only.
                attack.drop_duration = h2priv_netsim::SimDuration::ZERO;
            }
            let batch = run_batch(trials, Some(&attack), &map, |_| {});
            let reset_pct = batch
                .trials
                .iter()
                .filter(|(t, _)| t.result.outcomes[5].resets_sent > 0)
                .count() as f64
                * 100.0
                / batch.trials.len().max(1) as f64;
            IvdPoint {
                drop_pct: drop,
                reset_pct,
                success_pct: batch.html_success_pct(),
                broken_pct: batch.broken_pct(),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(points: &[IvdPoint]) -> String {
    let mut out = String::new();
    out.push_str("SECTION IV-D: Targeted packet drops -> forced stream reset\n");
    out.push_str("| drop rate (%) | client reset (%) | HTML success (%) | broken (%) |\n");
    out.push_str("|--------------:|-----------------:|-----------------:|-----------:|\n");
    for p in points {
        out.push_str(&format!(
            "| {:>13} | {:>16.0} | {:>16.0} | {:>10.0} |\n",
            p.drop_pct, p.reset_pct, p.success_pct, p.broken_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_paper_point() {
        let points = vec![IvdPoint {
            drop_pct: 80,
            reset_pct: 95.0,
            success_pct: 90.0,
            broken_pct: 0.0,
        }];
        let s = render(&points);
        assert!(s.contains("80"));
        assert!(s.contains("90"));
    }
}
