//! Shared experiment plumbing: trial batches and summary math.

use h2priv_core::experiment::{
    analyze_trial, calibrate_size_map, objects_of_interest, paper_scenario, run_paper_trial,
    AttackTrial, TrialAnalysis,
};
use h2priv_core::{AttackConfig, SizeMap};
use h2priv_testkit::{RunResult, ScenarioConfig};

/// Number of trials per experimental point — the paper's "the webpage was
/// downloaded 100 times".
pub const TRIALS: u64 = 100;

/// A reduced trial count for smoke/CI runs.
pub const QUICK_TRIALS: u64 = 25;

/// One batch of analyzed trials under a fixed condition.
#[derive(Debug)]
pub struct Batch {
    /// Per-trial (trial, analysis) pairs.
    pub trials: Vec<(AttackTrial, TrialAnalysis)>,
}

/// Calibrates the predictor's size map once (objects of interest of the
/// canonical scenario).
pub fn calibrated_map() -> SizeMap {
    let (iw, _) = paper_scenario(0);
    calibrate_size_map(&objects_of_interest(&iw))
}

/// Runs `trials` seeded trials under `attack` (None = baseline), analyzing
/// each against `map`.
///
/// Trials fan out across the [`crate::runner`] worker pool; results are
/// collected in seed order, so every summary is bit-identical to a serial
/// run.
pub fn run_batch(
    trials: u64,
    attack: Option<&AttackConfig>,
    map: &SizeMap,
    tweak: impl Fn(&mut ScenarioConfig) + Sync,
) -> Batch {
    let out = crate::runner::run_seeded(trials, |seed| {
        let trial = run_paper_trial(seed, attack, |cfg| {
            conformance_tweak(cfg);
            tweak(cfg);
        });
        record_conformance(&trial.result);
        crate::runner::record_sched(&trial.result.sched);
        let start = attack.and_then(|a| {
            trial
                .adversary
                .as_ref()
                .and_then(|snap| snap.analysis_start(a))
        });
        let objects = objects_of_interest(&trial.iw);
        let analysis = analyze_trial(&trial, map, &objects, start);
        (trial, analysis)
    });
    crate::runner::record_events(out.iter().map(|(t, _)| t.result.events).sum());
    Batch { trials: out }
}

/// Applies the process-wide `--check` switch to a trial config. Every
/// bench trial site routes its config through this so one flag governs
/// the whole run.
pub fn conformance_tweak(cfg: &mut ScenarioConfig) {
    cfg.conformance = crate::runner::conformance_enabled();
}

/// Forwards a checked trial's violations to the run-wide counter.
pub fn record_conformance(result: &RunResult) {
    crate::runner::record_violations(
        result.violations_total,
        result.violations.iter().map(|v| v.to_string()),
    );
}

impl Batch {
    /// Fraction (percent) of trials where the HTML's degree of multiplexing
    /// reached zero.
    pub fn html_non_mux_pct(&self) -> f64 {
        self.pct(|(_, a)| a.objects[0].degree == Some(0.0))
    }

    /// Fraction (percent) of trials where the HTML attack criterion held
    /// (degree 0 **and** identified).
    pub fn html_success_pct(&self) -> f64 {
        self.pct(|(_, a)| a.objects[0].success)
    }

    /// Fraction (percent) of trials whose connection broke.
    pub fn broken_pct(&self) -> f64 {
        self.pct(|(_, a)| a.broken)
    }

    /// Total TCP retransmissions summed over all trials.
    pub fn total_retransmissions(&self) -> u64 {
        self.trials
            .iter()
            .map(|(t, _)| t.result.total_retransmissions())
            .sum()
    }

    /// Per-object (index into `objects_of_interest` order: 0 = HTML,
    /// 1..=8 = images by party) success percentage.
    pub fn object_success_pct(&self, index: usize) -> f64 {
        self.pct(|(_, a)| a.objects[index].success)
    }

    /// Percentage of trials where the image at display rank `rank` was
    /// predicted correctly.
    pub fn rank_correct_pct(&self, rank: usize) -> f64 {
        self.pct(|(_, a)| a.rank_correct.get(rank).copied().unwrap_or(false))
    }

    /// Mean degree of multiplexing of the object at `index`, over trials
    /// where it was measured.
    pub fn mean_degree(&self, index: usize) -> f64 {
        let degrees: Vec<f64> = self
            .trials
            .iter()
            .filter_map(|(_, a)| a.objects[index].degree)
            .collect();
        h2priv_analysis::stats::mean(&degrees)
    }

    fn pct(&self, pred: impl Fn(&(AttackTrial, TrialAnalysis)) -> bool) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().filter(|t| pred(t)).count() as f64 * 100.0 / self.trials.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_summaries_work_on_a_tiny_run() {
        let map = calibrated_map();
        let batch = run_batch(2, None, &map, |_| {});
        assert_eq!(batch.trials.len(), 2);
        let pct = batch.html_non_mux_pct();
        assert!((0.0..=100.0).contains(&pct));
        assert!(batch.broken_pct() <= 100.0);
        assert!(batch.mean_degree(1) >= 0.0);
    }
}
