//! Minimal JSON serialization for the exhibit types.
//!
//! The harness used to derive `serde::Serialize`, but the external serde
//! stack is unavailable in offline builds, and the exhibits only ever emit
//! flat structs of scalars, strings and vectors. This module is the whole
//! of what they need: a [`Json`] value tree, a [`ToJson`] conversion trait,
//! and a pretty printer matching serde_json's 2-space layout.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (serialized without a decimal point).
    U64(u64),
    /// A float (serialized via Rust's shortest round-trip `Display`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl ToJson for u16 {
    fn to_json(&self) -> Json {
        Json::U64(u64::from(*self))
    }
}
impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}
impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}
impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}
impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}
impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}
impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

/// Builds a [`Json::Object`] from `(key, value)` pairs.
pub fn object<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Keep whole floats readable as "12.0".
            let _ = write!(out, "{x:.1}");
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // JSON has no NaN/Inf; mirror the "lossy but valid" convention.
        out.push_str("null");
    }
}

impl Json {
    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => number(out, *x),
            Json::Str(s) => escape_into(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&INDENT.repeat(depth + 1));
                    escape_into(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
        }
    }
}

/// Pretty-prints `value` with 2-space indentation (serde_json's layout).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.to_json().write_pretty(&mut out, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string_pretty(&true), "true");
        assert_eq!(to_string_pretty(&42u64), "42");
        assert_eq!(to_string_pretty(&1.5f64), "1.5");
        assert_eq!(to_string_pretty(&90.0f64), "90.0");
        assert_eq!(to_string_pretty("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string_pretty(&f64::NAN), "null");
        assert_eq!(to_string_pretty(&f64::INFINITY), "null");
    }

    #[test]
    fn nested_layout_matches_serde_json() {
        let v = vec![
            object([("name", Json::Str("a".into())), ("n", Json::U64(1))]),
            object([("name", Json::Str("b".into())), ("n", Json::U64(2))]),
        ];
        let expect = "[\n  {\n    \"name\": \"a\",\n    \"n\": 1\n  },\n  {\n    \"name\": \"b\",\n    \"n\": 2\n  }\n]";
        assert_eq!(to_string_pretty(&v), expect);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Vec::<u64>::new()), "[]");
        assert_eq!(to_string_pretty(&Json::Object(Vec::new())), "{}");
    }
}
