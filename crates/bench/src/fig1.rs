//! Figure 1 — the paper's opening concept: sizes of non-multiplexed
//! objects are recoverable from encrypted traffic; multiplexed ones are
//! not.
//!
//! Two objects are fetched over one connection; in case 1 the client
//! requests O₂ only after O₁ completes, in case 2 both at once (the
//! paper's two panels). The passive observer reconstructs record bursts
//! and estimates sizes; the bench reports whether the true sizes were
//! recovered.

use h2priv_analysis::{app_data_records, extract_records, segment_bursts};
use h2priv_core::experiment::BURST_GAP;
use h2priv_netsim::{Dir, SimDuration};
use h2priv_testkit::{run_trial, ScenarioConfig};
use h2priv_web::{BrowsePlan, ObjectKind, Phase, PlanStep, Trigger, Website};

use crate::json::{object, Json, ToJson};

/// Result for one request-timing case.
#[derive(Debug, Clone)]
pub struct Fig1Case {
    /// Case name (the paper's case 1 / case 2).
    pub policy: String,
    /// True object sizes.
    pub true_sizes: Vec<u64>,
    /// The observer's burst size estimates, in time order.
    pub estimated_sizes: Vec<u64>,
    /// True iff every object's size was recovered within 5 %.
    pub sizes_recovered: bool,
}

impl ToJson for Fig1Case {
    fn to_json(&self) -> Json {
        object([
            ("policy", self.policy.to_json()),
            ("true_sizes", self.true_sizes.to_json()),
            ("estimated_sizes", self.estimated_sizes.to_json()),
            ("sizes_recovered", self.sizes_recovered.to_json()),
        ])
    }
}

/// Builds the two-object site; `concurrent` decides whether O₂ is
/// requested together with O₁ (Fig. 1 case 2) or only after O₁ completes
/// (case 1).
fn scenario(concurrent: bool) -> (Website, BrowsePlan) {
    let mut site = Website::new();
    let o1 = site.add("/o1.bin", ObjectKind::Other, 40_000);
    let o2 = site.add("/o2.bin", ObjectKind::Other, 70_000);
    let first = Phase {
        trigger: Trigger::Start,
        delay: SimDuration::ZERO,
        steps: vec![PlanStep {
            object: o1,
            gap: SimDuration::ZERO,
        }],
        reissue: true,
    };
    let second = Phase {
        trigger: if concurrent {
            Trigger::Start
        } else {
            Trigger::AfterComplete(o1)
        },
        delay: if concurrent {
            SimDuration::from_micros(400)
        } else {
            SimDuration::from_millis(60)
        },
        steps: vec![PlanStep {
            object: o2,
            gap: SimDuration::ZERO,
        }],
        reissue: true,
    };
    (site, BrowsePlan::new().with_phase(first).with_phase(second))
}

/// Runs both cases.
pub fn run() -> Vec<Fig1Case> {
    [("case 1: O2 after O1", false), ("case 2: concurrent", true)]
        .into_iter()
        .map(|(label, concurrent)| {
            let (site, plan) = scenario(concurrent);
            let mut cfg = ScenarioConfig {
                seed: 7,
                ..ScenarioConfig::default()
            };
            cfg.browser.gap_noise_frac = 0.0;
            crate::common::conformance_tweak(&mut cfg);
            let result = run_trial(&site, &plan, &cfg, None);
            crate::common::record_conformance(&result);
            crate::runner::record_events(result.events);
            crate::runner::record_sched(&result.sched);
            let records = extract_records(&result.trace);
            let data = app_data_records(&records, Dir::RightToLeft);
            let bursts = segment_bursts(&data, BURST_GAP);
            // Keep bursts that plausibly carry object data (skip the tiny
            // settings/handshake-adjacent ones).
            let estimated: Vec<u64> = bursts
                .iter()
                .filter(|b| b.plaintext_bytes > 2_000)
                .map(|b| b.plaintext_bytes)
                .collect();
            let true_sizes = vec![40_000u64, 70_000];
            let sizes_recovered = true_sizes.iter().all(|&t| {
                estimated
                    .iter()
                    .any(|&e| (e as f64 - t as f64).abs() / t as f64 <= 0.05)
            });
            Fig1Case {
                policy: label.to_owned(),
                true_sizes,
                estimated_sizes: estimated,
                sizes_recovered,
            }
        })
        .collect()
}

/// Renders both cases.
pub fn render(cases: &[Fig1Case]) -> String {
    let mut out = String::new();
    out.push_str("FIGURE 1: size recovery, non-multiplexed vs multiplexed\n");
    for c in cases {
        out.push_str(&format!(
            "  {:<12} true {:?}  observed bursts {:?}  -> sizes recovered: {}\n",
            c.policy, c.true_sizes, c.estimated_sizes, c.sizes_recovered
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_recovers_multiplexed_does_not() {
        let cases = run();
        assert_eq!(cases.len(), 2);
        assert!(
            cases[0].sizes_recovered,
            "sequential requests should expose sizes: {cases:?}"
        );
        assert!(
            !cases[1].sizes_recovered,
            "concurrent requests should hide sizes: {cases:?}"
        );
    }
}
