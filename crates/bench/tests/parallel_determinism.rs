//! Regression guard for the parallel trial runner: a `Batch` produced with
//! any worker count must be bit-identical to the serial run. Every trial is
//! seeded and self-contained, and `run_seeded` collects results in seed
//! order, so nothing downstream may observe the thread count.

use std::sync::Mutex;

use h2priv_bench::common::{run_batch, Batch};
use h2priv_bench::runner;
use h2priv_core::AttackConfig;
use h2priv_netsim::SimDuration;

const TRIALS: u64 = 6;

/// The worker count is process-global, so tests that flip it must not
/// overlap.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

fn batch_fingerprint(batch: &Batch) -> Vec<u64> {
    let mut fp = vec![
        batch.html_non_mux_pct().to_bits(),
        batch.html_success_pct().to_bits(),
        batch.broken_pct().to_bits(),
        batch.total_retransmissions(),
    ];
    for index in 0..9 {
        fp.push(batch.object_success_pct(index).to_bits());
        fp.push(batch.mean_degree(index).to_bits());
    }
    for rank in 0..8 {
        fp.push(batch.rank_correct_pct(rank).to_bits());
    }
    // Per-trial event counts pin down the raw engine runs, not just the
    // aggregated statistics.
    fp.extend(batch.trials.iter().map(|(t, _)| t.result.events));
    fp
}

fn run_with_threads(threads: usize, attack: Option<&AttackConfig>) -> Vec<u64> {
    runner::set_threads(threads);
    let map = h2priv_bench::common::calibrated_map();
    let batch = run_batch(TRIALS, attack, &map, |_| {});
    runner::set_threads(0);
    batch_fingerprint(&batch)
}

#[test]
fn parallel_batches_match_serial_bit_for_bit() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let serial = run_with_threads(1, None);
    for threads in [2, 4] {
        let parallel = run_with_threads(threads, None);
        assert_eq!(
            serial, parallel,
            "baseline batch diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn parallel_attack_batches_match_serial_bit_for_bit() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let attack = AttackConfig::jitter_only(SimDuration::from_millis(50));
    let serial = run_with_threads(1, Some(&attack));
    for threads in [2, 4] {
        let parallel = run_with_threads(threads, Some(&attack));
        assert_eq!(
            serial, parallel,
            "attack batch diverged between 1 and {threads} threads"
        );
    }
}
