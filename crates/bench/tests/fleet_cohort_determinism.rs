//! Cohort-boundary determinism at the exhibit level: the `--cohort`
//! value only pre-sizes the streamed arena's slabs — admission happens
//! at each pair's start time and retirement at its page-load finish
//! regardless — so the rendered fleet report must be byte-identical
//! across *every* cohort size, and across thread counts within each.
//! (Streamed and eager runs are compared on outcome rows in
//! `testkit::fleet`'s unit tests; this test pins the CLI-visible
//! surface: what `repro fleet --cohort N --threads T` prints.)

use h2priv_bench::fleet::{self, FleetTuning};
use h2priv_bench::runner;
use h2priv_defense::DefenseSpec;

const POPULATION: u32 = 24;
const SHARDS: u32 = 4;

fn rendered(cohort: u32, threads: usize) -> String {
    runner::set_threads(threads);
    let tuning = FleetTuning {
        cohort: Some(cohort),
        // A spread wider than the default forces real admission overlap
        // structure: early pairs retire while later ones are still
        // unbuilt, so slot reuse actually happens at cohort 1.
        spread_secs: Some(30),
        progress: false,
    };
    fleet::render(&fleet::run_with(
        POPULATION,
        SHARDS,
        DefenseSpec::None,
        &tuning,
    ))
}

/// Cohort 1 (every slot reused immediately), a prime that divides
/// nothing (7), and the whole population (no reuse needed) must agree —
/// at one thread and at eight.
#[test]
fn fleet_report_is_identical_across_cohort_sizes_and_threads() {
    let reference = rendered(1, 1);
    for cohort in [1, 7, POPULATION] {
        for threads in [1usize, 8] {
            assert_eq!(
                rendered(cohort, threads),
                reference,
                "fleet report diverged at cohort {cohort}, {threads} thread(s)"
            );
        }
    }
}
