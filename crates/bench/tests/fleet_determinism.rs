//! Fleet exhibit determinism: the population is partitioned by the
//! *shard count*, not the worker count, and shard results merge in seed
//! order — so the report must be identical at any `--threads`.

use h2priv_bench::{fleet, runner};

/// The shard count partitions the population (`splitmix64(pair) % shards`)
/// and seeds each shard's RNG from the pair id, not the shard id — so a
/// pair's page load plays out identically no matter which shard hosts it.
/// The rendered outcome rows must therefore be byte-identical at any
/// `--shards`; only the header line, which names the shard count itself,
/// may differ.
#[test]
fn fleet_outcomes_are_identical_across_shard_counts() {
    const POPULATION: u32 = 24;

    runner::set_threads(1);
    let body_of = |shards: u32| {
        let rendered = fleet::render(&fleet::run(POPULATION, shards));
        let (header, body) = rendered
            .split_once('\n')
            .expect("render emits a header line");
        assert_eq!(
            header,
            format!("FLEET: {POPULATION} pairs over {shards} shards, victim = pair 0")
        );
        body.to_owned()
    };

    let reference = body_of(1);
    for shards in [2, 4, 8] {
        assert_eq!(
            body_of(shards),
            reference,
            "fleet outcomes diverged between 1 and {shards} shards"
        );
    }
}

#[test]
fn fleet_report_is_identical_across_thread_counts() {
    const POPULATION: u32 = 24;
    const SHARDS: u32 = 4;

    runner::set_threads(1);
    let serial = fleet::run(POPULATION, SHARDS);
    runner::set_threads(4);
    let threaded = fleet::run(POPULATION, SHARDS);

    // The rendered exhibit is what `repro` prints: byte-identical.
    assert_eq!(fleet::render(&serial), fleet::render(&threaded));

    // And the underlying counters (everything but wall-clock) agree.
    for (a, b) in [
        (&serial.baseline, &threaded.baseline),
        (&serial.attacked, &threaded.attacked),
    ] {
        assert_eq!(a.events, b.events, "{} events diverged", a.label);
        assert_eq!(
            a.shard_events, b.shard_events,
            "{} shard occupancy diverged",
            a.label
        );
        assert_eq!(
            a.end_time_ms, b.end_time_ms,
            "{} sim end time diverged",
            a.label
        );
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.requests_complete, b.requests_complete);
        assert_eq!(a.victim_success, b.victim_success);
        assert_eq!(a.victim_degree, b.victim_degree);
    }
}
