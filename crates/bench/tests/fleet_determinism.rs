//! Fleet exhibit determinism: the population is partitioned by the
//! *shard count*, not the worker count, and shard results merge in seed
//! order — so the report must be identical at any `--threads`.

use h2priv_bench::{fleet, runner};

#[test]
fn fleet_report_is_identical_across_thread_counts() {
    const POPULATION: u32 = 24;
    const SHARDS: u32 = 4;

    runner::set_threads(1);
    let serial = fleet::run(POPULATION, SHARDS);
    runner::set_threads(4);
    let threaded = fleet::run(POPULATION, SHARDS);

    // The rendered exhibit is what `repro` prints: byte-identical.
    assert_eq!(fleet::render(&serial), fleet::render(&threaded));

    // And the underlying counters (everything but wall-clock) agree.
    for (a, b) in [
        (&serial.baseline, &threaded.baseline),
        (&serial.attacked, &threaded.attacked),
    ] {
        assert_eq!(a.events, b.events, "{} events diverged", a.label);
        assert_eq!(
            a.shard_events, b.shard_events,
            "{} shard occupancy diverged",
            a.label
        );
        assert_eq!(
            a.end_time_ms, b.end_time_ms,
            "{} sim end time diverged",
            a.label
        );
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.requests_complete, b.requests_complete);
        assert_eq!(a.victim_success, b.victim_success);
        assert_eq!(a.victim_degree, b.victim_degree);
    }
}
