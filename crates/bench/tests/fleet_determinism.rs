//! Fleet exhibit determinism: the population is partitioned by the
//! *shard count*, not the worker count, and shard results merge in seed
//! order — so the report must be identical at any `--threads`. The same
//! holds with a countermeasure deployed: defense RNG streams are dedicated
//! per-pair forks, independent of sharding and threading.

use h2priv_bench::{fleet, runner};
use h2priv_defense::DefenseSpec;

/// The shard count partitions the population (`splitmix64(pair) % shards`)
/// and seeds each shard's RNG from the pair id, not the shard id — so a
/// pair's page load plays out identically no matter which shard hosts it.
/// The rendered outcome rows must therefore be byte-identical at any
/// `--shards`; only the header line, which names the shard count itself,
/// may differ.
#[test]
fn fleet_outcomes_are_identical_across_shard_counts() {
    const POPULATION: u32 = 24;

    runner::set_threads(1);
    let body_of = |shards: u32| {
        let rendered = fleet::render(&fleet::run(POPULATION, shards, DefenseSpec::None));
        let (header, body) = rendered
            .split_once('\n')
            .expect("render emits a header line");
        assert_eq!(
            header,
            format!(
                "FLEET: {POPULATION} pairs over {shards} shards, victim = pair 0, defense: none"
            )
        );
        body.to_owned()
    };

    let reference = body_of(1);
    for shards in [2, 4, 8] {
        assert_eq!(
            body_of(shards),
            reference,
            "fleet outcomes diverged between 1 and {shards} shards"
        );
    }
}

#[test]
fn fleet_report_is_identical_across_thread_counts() {
    const POPULATION: u32 = 24;
    const SHARDS: u32 = 4;

    runner::set_threads(1);
    let serial = fleet::run(POPULATION, SHARDS, DefenseSpec::None);
    runner::set_threads(4);
    let threaded = fleet::run(POPULATION, SHARDS, DefenseSpec::None);

    // The rendered exhibit is what `repro` prints: byte-identical.
    assert_eq!(fleet::render(&serial), fleet::render(&threaded));

    // And the underlying counters (everything but wall-clock) agree.
    for (a, b) in [
        (&serial.baseline, &threaded.baseline),
        (&serial.attacked, &threaded.attacked),
    ] {
        assert_eq!(a.events, b.events, "{} events diverged", a.label);
        assert_eq!(
            a.shard_events, b.shard_events,
            "{} shard occupancy diverged",
            a.label
        );
        assert_eq!(
            a.end_time_ms, b.end_time_ms,
            "{} sim end time diverged",
            a.label
        );
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.requests_complete, b.requests_complete);
        assert_eq!(a.victim_success, b.victim_success);
        assert_eq!(a.victim_degree, b.victim_degree);
    }
}

/// A defended fleet — per-pair padding derivation, the victim's dummy-record
/// shaper and its dedicated RNG fork included — is byte-identical across
/// thread counts for every defense in the arena. This is the structural
/// guarantee: the shard partition fixes the work, threads only run it.
#[test]
fn defended_fleet_is_identical_across_thread_counts() {
    const POPULATION: u32 = 24;
    const SHARDS: u32 = 4;

    for defense in DefenseSpec::arena() {
        runner::set_threads(1);
        let serial = fleet::render(&fleet::run(POPULATION, SHARDS, defense));
        runner::set_threads(8);
        let threaded = fleet::render(&fleet::run(POPULATION, SHARDS, defense));
        assert_eq!(
            serial, threaded,
            "{defense}: defended fleet diverged between 1 and 8 threads"
        );
    }
}

/// Defended fleet outcomes pinned across shard counts. Unlike the thread
/// axis, the shard axis is only *outcome*-stable, not timing-stable: the
/// arenas share FIFO links whose capacity scales with the shard's pair
/// count and whose loss/jitter draws come from the shard-wide RNG in
/// arrival order, so fine-grained victim timing legitimately shifts with
/// the shard partition (true of the undefended fleet too — population 24
/// is one of the populations whose rendered rows are robust to it). The
/// shaping defenses deliberately hold the victim's degree of multiplexing
/// at the serialization knife edge, so their coarse outcomes track those
/// timing shifts; the padding defenses don't, and stay pinned here.
#[test]
fn defended_fleet_outcomes_are_identical_across_shard_counts() {
    runner::set_threads(4);
    for (population, defense) in [
        (24, DefenseSpec::FrameQuantize { quantum: 1024 }),
        (
            32,
            DefenseSpec::ConstrainedPadding {
                overhead_per_mille: 250,
            },
        ),
    ] {
        let rows_of = |shards: u32| {
            fleet::render(&fleet::run(population, shards, defense))
                .split_once('\n')
                .expect("render emits a header line")
                .1
                .to_owned()
        };
        let reference = rows_of(1);
        for shards in [2, 4, 8] {
            assert_eq!(
                rows_of(shards),
                reference,
                "{defense}: defended fleet outcomes diverged between 1 and {shards} shards"
            );
        }
    }
}
