//! Web objects: the things whose encrypted sizes the attack recovers.

use std::cell::RefCell;
use std::fmt;

use h2priv_bytes::{FxHashMap, SharedBytes};

/// Identifies an object within one [`Website`](crate::Website).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// What kind of resource an object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// An HTML page.
    Html,
    /// A script.
    JavaScript,
    /// A style sheet.
    StyleSheet,
    /// An image (the party emblems of the paper's target are these).
    Image,
    /// A web font.
    Font,
    /// Other static data.
    Other,
}

impl ObjectKind {
    /// The `content-type` header value served for this kind.
    pub fn content_type(self) -> &'static str {
        match self {
            ObjectKind::Html => "text/html; charset=utf-8",
            ObjectKind::JavaScript => "application/javascript",
            ObjectKind::StyleSheet => "text/css",
            ObjectKind::Image => "image/png",
            ObjectKind::Font => "font/woff2",
            ObjectKind::Other => "application/octet-stream",
        }
    }
}

/// One servable resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebObject {
    /// Identifier within the site.
    pub id: ObjectId,
    /// Request path.
    pub path: String,
    /// Resource kind.
    pub kind: ObjectKind,
    /// Body size in bytes. This is the attack's side channel.
    pub size: usize,
}

impl WebObject {
    /// Creates an object.
    pub fn new(id: ObjectId, path: impl Into<String>, kind: ObjectKind, size: usize) -> Self {
        WebObject {
            id,
            path: path.into(),
            kind,
            size,
        }
    }

    /// Deterministic body content: repeatable filler derived from the id,
    /// so retransmitted copies are byte-identical (as real static objects
    /// are) and tests can verify end-to-end integrity. Bodies are generated
    /// eight bytes per generator step — body generation is on the server's
    /// per-response hot path.
    pub fn body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size.next_multiple_of(8));
        let mut state = (self.id.0 as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        while out.len() < self.size {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            out.extend_from_slice(&state.wrapping_mul(0x2545F4914F6CDD1D).to_le_bytes());
        }
        out.truncate(self.size);
        out
    }

    /// [`body`](Self::body) as a shared slice, memoized per thread.
    ///
    /// Body content is a pure function of `(id, size)`, and experiment
    /// runners rebuild the same site for every trial — so each distinct
    /// body is generated once per thread and every later request for it is
    /// an O(1) reference-count bump. Static-object serving stops being a
    /// per-response generation cost.
    pub fn shared_body(&self) -> SharedBytes {
        thread_local! {
            static BODY_CACHE: RefCell<FxHashMap<(u32, usize), SharedBytes>> =
                RefCell::new(FxHashMap::default());
        }
        BODY_CACHE.with(|cache| {
            cache
                .borrow_mut()
                .entry((self.id.0, self.size))
                .or_insert_with(|| SharedBytes::from_vec(self.body()))
                .clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_matches_size_and_is_deterministic() {
        let o = WebObject::new(ObjectId(3), "/a.png", ObjectKind::Image, 9_500);
        assert_eq!(o.body().len(), 9_500);
        assert_eq!(o.body(), o.body());
    }

    #[test]
    fn different_objects_have_different_bodies() {
        let a = WebObject::new(ObjectId(1), "/a", ObjectKind::Other, 100);
        let b = WebObject::new(ObjectId(2), "/b", ObjectKind::Other, 100);
        assert_ne!(a.body(), b.body());
    }

    #[test]
    fn zero_size_body_is_empty() {
        let o = WebObject::new(ObjectId(1), "/e", ObjectKind::Other, 0);
        assert!(o.body().is_empty());
    }

    #[test]
    fn content_types_are_distinct_for_main_kinds() {
        assert_ne!(
            ObjectKind::Html.content_type(),
            ObjectKind::Image.content_type()
        );
        assert!(ObjectKind::Image.content_type().starts_with("image/"));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", ObjectId(6)), "obj6");
    }
}
