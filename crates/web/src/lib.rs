//! # h2priv-web — website and browser model
//!
//! Part of the `h2priv` reproduction of *"Depending on HTTP/2 for Privacy?
//! Good Luck!"* (DSN 2020). The paper's evaluation target is the
//! `isidewith.com` survey site as browsed by lab volunteers on Firefox;
//! this crate models both ends of that workload:
//!
//! * [`Website`]/[`WebObject`] — static sites as path → (kind, size) maps
//!   with deterministic bodies.
//! * [`isidewith`] — the target instance: 9 500 B result HTML, 47 embedded
//!   objects, 8 emblem images of 5–16 KB requested in the user's
//!   preference order with Table II's inter-request gaps.
//! * [`Browser`] — the client state machine: phase-gated request schedule
//!   with timing noise, stall detection, `RST_STREAM` + re-request on
//!   stalled responses (the Firefox behaviour §IV-D exploits).
//! * [`SiteServer`] — the server application: one worker per accepted
//!   request, duplicates served in full (the §IV-B duplicate-service
//!   behaviour).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod browser;
pub mod isidewith;
pub mod newssite;
mod object;
mod plan;
mod server;
mod site;
pub mod streaming;

pub use browser::{Browser, BrowserCmd, BrowserConfig, RequestOutcome};
pub use object::{ObjectId, ObjectKind, WebObject};
pub use plan::{BrowsePlan, Phase, PlanStep, Trigger};
pub use server::{PoolConfig, PoolStats, Response, SiteServer, SiteServerConfig, WorkerPool};
pub use site::Website;
