//! Browsing plans: when the client requests what.
//!
//! The paper's Table II pins the inter-request timing of the target page
//! (e.g. consecutive emblem images issued 0.1–2 ms apart, the result HTML
//! 500 ms after its predecessor). A [`BrowsePlan`] encodes that structure
//! as *phases*: a phase's requests are scheduled relative to its trigger
//! (session start, or completion of a prerequisite object — the way real
//! pages gate embedded fetches on HTML/JS arrival).

use h2priv_netsim::SimDuration;

use crate::object::ObjectId;

/// What starts a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// The session start.
    Start,
    /// Completion (full receipt) of a prerequisite object.
    AfterComplete(ObjectId),
}

/// One request within a phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Object to request (paths are resolved against the site at build
    /// time; the id is authoritative).
    pub object: ObjectId,
    /// Gap after the *previous request in the phase* was issued (for the
    /// first step: after the phase fire time).
    pub gap: SimDuration,
}

/// A group of requests sharing a trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// What releases the phase.
    pub trigger: Trigger,
    /// Extra delay between the trigger and the first request (parse / JS
    /// execution time).
    pub delay: SimDuration,
    /// The requests.
    pub steps: Vec<PlanStep>,
    /// Whether a stalled request of this phase is re-issued after its
    /// stream is reset. Resources of a page being navigated away from are
    /// abandoned (`false`); resources of the current page are re-fetched
    /// (`true`) — the paper's "the client resends GET requests if a high
    /// priority object is not yet received" (§IV-D).
    pub reissue: bool,
}

/// A complete browsing session plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BrowsePlan {
    /// Phases in declaration order (triggers may interleave them in time).
    pub phases: Vec<Phase>,
}

impl BrowsePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        BrowsePlan::default()
    }

    /// Appends a phase (builder style).
    pub fn with_phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Total number of requests across all phases.
    pub fn request_count(&self) -> usize {
        self.phases.iter().map(|p| p.steps.len()).sum()
    }

    /// Iterates all planned object ids in declaration order.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.phases
            .iter()
            .flat_map(|p| p.steps.iter().map(|s| s.object))
    }

    /// The position of `object` in declaration order (the "n-th GET" the
    /// paper's monitor counts), if planned.
    pub fn request_index(&self, object: ObjectId) -> Option<usize> {
        self.objects().position(|o| o == object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(id: u32, gap_ms: u64) -> PlanStep {
        PlanStep {
            object: ObjectId(id),
            gap: SimDuration::from_millis(gap_ms),
        }
    }

    #[test]
    fn counting_and_indexing() {
        let plan = BrowsePlan::new()
            .with_phase(Phase {
                trigger: Trigger::Start,
                delay: SimDuration::ZERO,
                steps: vec![step(0, 0), step(1, 100)],
                reissue: false,
            })
            .with_phase(Phase {
                trigger: Trigger::AfterComplete(ObjectId(1)),
                delay: SimDuration::from_millis(30),
                steps: vec![step(2, 0)],
                reissue: true,
            });
        assert_eq!(plan.request_count(), 3);
        assert_eq!(plan.request_index(ObjectId(2)), Some(2));
        assert_eq!(plan.request_index(ObjectId(9)), None);
        let ids: Vec<ObjectId> = plan.objects().collect();
        assert_eq!(ids, vec![ObjectId(0), ObjectId(1), ObjectId(2)]);
    }
}
