//! A website: a set of objects addressable by path.

use h2priv_bytes::{FxHashMap, SharedBytes};

use crate::object::{ObjectId, ObjectKind, WebObject};

/// A static website.
#[derive(Debug, Clone, Default)]
pub struct Website {
    objects: Vec<WebObject>,
    by_path: FxHashMap<String, ObjectId>,
    /// Object bodies generated once and shared, id-indexed; filled by
    /// [`materialize_bodies`](Self::materialize_bodies). A site behind an
    /// `Rc` serves every connection of a shard from this one set of
    /// buffers — per-thread memoization (and its per-thread copies) never
    /// enters the picture. Empty until materialized.
    bodies: Vec<SharedBytes>,
}

impl Website {
    /// Creates an empty site.
    pub fn new() -> Self {
        Website::default()
    }

    /// Adds an object and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the path is already registered (a site is a function from
    /// path to object).
    pub fn add(&mut self, path: impl Into<String>, kind: ObjectKind, size: usize) -> ObjectId {
        let path = path.into();
        assert!(!self.by_path.contains_key(&path), "duplicate path {path:?}");
        let id = ObjectId(self.objects.len() as u32);
        self.by_path.insert(path.clone(), id);
        self.objects.push(WebObject::new(id, path, kind, size));
        self.bodies.clear(); // stale: re-materialize after mutation
        id
    }

    /// Generates every object's body once, to be served as shared slices
    /// by [`shared_body_of`](Self::shared_body_of). Call after the site is
    /// fully built; typically followed by wrapping the site in an `Rc` so
    /// all connections of a shard serve from the same buffers.
    pub fn materialize_bodies(&mut self) {
        self.bodies = self
            .objects
            .iter()
            .map(|o| SharedBytes::from_vec(o.body()))
            .collect();
    }

    /// The materialized shared body for `id`, or `None` when
    /// [`materialize_bodies`](Self::materialize_bodies) has not run (or
    /// the id is unknown). O(1), a refcount bump.
    pub fn shared_body_of(&self, id: ObjectId) -> Option<SharedBytes> {
        self.bodies.get(id.0 as usize).cloned()
    }

    /// Looks an object up by path.
    pub fn lookup(&self, path: &str) -> Option<&WebObject> {
        self.by_path
            .get(path)
            .map(|&id| &self.objects[id.0 as usize])
    }

    /// Looks an object up by id.
    pub fn object(&self, id: ObjectId) -> Option<&WebObject> {
        self.objects.get(id.0 as usize)
    }

    /// All objects, in id order.
    pub fn objects(&self) -> &[WebObject] {
        &self.objects
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the site has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total body bytes across all objects.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.size as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut site = Website::new();
        let id = site.add("/index.html", ObjectKind::Html, 1234);
        assert_eq!(site.lookup("/index.html").unwrap().id, id);
        assert_eq!(site.object(id).unwrap().size, 1234);
        assert_eq!(site.lookup("/missing"), None);
        assert_eq!(site.len(), 1);
        assert!(!site.is_empty());
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut site = Website::new();
        let a = site.add("/a", ObjectKind::Other, 1);
        let b = site.add("/b", ObjectKind::Other, 2);
        assert_eq!(a, ObjectId(0));
        assert_eq!(b, ObjectId(1));
        assert_eq!(site.total_bytes(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate path")]
    fn duplicate_path_panics() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Other, 1);
        site.add("/a", ObjectKind::Other, 2);
    }
}
