//! The browser model: issues requests per a [`BrowsePlan`], tracks response
//! progress, and — critically for §IV-D — resets and re-issues stalled
//! streams the way the paper observed Firefox doing ("After Stream Reset,
//! the client resends GET requests if a high priority object is not yet
//! received").
//!
//! Sans-everything: the browser is a state machine the host drives with
//! events and polls for commands; it touches neither sockets nor the
//! HTTP/2 connection directly.

use h2priv_bytes::FxHashMap;

use h2priv_http2::StreamId;
use h2priv_netsim::{DurationDist, SimDuration, SimRng, SimTime};

use crate::object::ObjectId;
use crate::plan::{BrowsePlan, Trigger};
use crate::site::Website;

/// Browser tuning knobs.
#[derive(Debug, Clone)]
pub struct BrowserConfig {
    /// How long a response may go without progress before the browser
    /// resets its stream. The paper's forced reset arrives through this
    /// path: the adversary drops server→client packets until the stall
    /// timeout fires (§IV-D "We continue the packet drops for 6 seconds
    /// until the client sends stream reset").
    pub stall_timeout: SimDuration,
    /// Re-issue the GET on a new stream after resetting a stalled one.
    pub reissue_on_stall: bool,
    /// Total attempts per object (first issue + re-issues).
    pub max_attempts: u32,
    /// Random noise added to every scheduled request gap (natural client
    /// timing variation; one source of the paper's baseline spread).
    pub request_noise: DurationDist,
    /// Multiplicative noise on gaps: each gap is scaled by a uniform draw
    /// from `[1 - frac, 1 + frac]`. Proportional, so the micro-gaps between
    /// scripted image requests stay microscopic while think-time gaps vary
    /// by hundreds of milliseconds.
    pub gap_noise_frac: f64,
    /// Bytes that must accumulate within one stall window to count as
    /// *progress*; together with [`stall_timeout`](Self::stall_timeout)
    /// this is a minimum-goodput floor (default ≈ 100 KB/s). A response
    /// crawling below it — TCP loss-recovery trickle under the adversary's
    /// 80 % drop window — is treated as stalled and reset, matching the
    /// paper's observation that sustained drops reliably drive the client
    /// to "reset all the ongoing HTTP/2 streams" (§IV-D).
    pub progress_quantum: u64,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig {
            stall_timeout: SimDuration::from_secs(3),
            reissue_on_stall: true,
            max_attempts: 3,
            request_noise: DurationDist::None,
            gap_noise_frac: 0.0,
            progress_quantum: 512 * 1024,
        }
    }
}

/// Commands the browser asks its host to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrowserCmd {
    /// Open a stream with a GET for `path`; the host must call
    /// [`Browser::note_stream`] with the allocated id.
    SendRequest {
        /// Token identifying the logical request.
        req: usize,
        /// Request path.
        path: String,
        /// The object being fetched.
        object: ObjectId,
    },
    /// Send RST_STREAM (CANCEL) for a stalled stream.
    ResetStream {
        /// The stream to reset.
        stream: StreamId,
    },
}

/// Final per-request record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The object requested.
    pub object: ObjectId,
    /// When each attempt's GET was issued.
    pub issued_at: Vec<SimTime>,
    /// When the object completed, if it did.
    pub completed_at: Option<SimTime>,
    /// Body bytes received.
    pub bytes: u64,
    /// Streams reset by the browser for this request.
    pub resets_sent: u32,
    /// True if the object was abandoned.
    pub failed: bool,
}

#[derive(Debug)]
struct ReqState {
    object: ObjectId,
    path: String,
    reissue: bool,
    due: SimTime,
    issued: bool,
    stream: Option<StreamId>,
    last_progress: SimTime,
    /// Bytes received since `last_progress` was refreshed.
    progress_accum: u64,
    bytes: u64,
    complete: bool,
    failed: bool,
    attempts: u32,
    issued_at: Vec<SimTime>,
    completed_at: Option<SimTime>,
    resets_sent: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseProgress {
    Pending,
    Scheduled,
    Cancelled,
}

/// The browser state machine.
#[derive(Debug)]
pub struct Browser {
    config: BrowserConfig,
    plan: BrowsePlan,
    paths: Vec<String>,
    requests: Vec<ReqState>,
    phase_progress: Vec<PhaseProgress>,
    by_stream: FxHashMap<StreamId, usize>,
    completed: FxHashMap<ObjectId, SimTime>,
    started_at: Option<SimTime>,
    connection_dead: bool,
    rng: SimRng,
}

impl Browser {
    /// Creates a browser for `plan` against `site`.
    ///
    /// # Panics
    ///
    /// Panics if the plan references an object the site does not have.
    pub fn new(site: &Website, plan: BrowsePlan, config: BrowserConfig, rng: SimRng) -> Self {
        let paths = site
            .objects()
            .iter()
            .map(|o| o.path.clone())
            .collect::<Vec<_>>();
        for object in plan.objects() {
            assert!(
                site.object(object).is_some(),
                "plan references unknown {object}"
            );
        }
        let phase_progress = vec![PhaseProgress::Pending; plan.phases.len()];
        Browser {
            config,
            plan,
            paths,
            requests: Vec::new(),
            phase_progress,
            by_stream: FxHashMap::default(),
            completed: FxHashMap::default(),
            started_at: None,
            connection_dead: false,
            rng,
        }
    }

    /// Marks the session start (connection established).
    pub fn start(&mut self, now: SimTime) {
        self.started_at = Some(now);
    }

    /// The host reports the stream allocated for a
    /// [`BrowserCmd::SendRequest`].
    pub fn note_stream(&mut self, req: usize, stream: StreamId) {
        self.requests[req].stream = Some(stream);
        self.by_stream.insert(stream, req);
    }

    /// Response headers arrived on a stream.
    pub fn on_headers(&mut self, stream: StreamId, now: SimTime) {
        if let Some(&req) = self.by_stream.get(&stream) {
            self.requests[req].last_progress = now;
        }
    }

    /// Body bytes arrived on a stream.
    pub fn on_data(&mut self, stream: StreamId, len: usize, end_stream: bool, now: SimTime) {
        let Some(&req) = self.by_stream.get(&stream) else {
            return;
        };
        let r = &mut self.requests[req];
        if r.complete || r.failed {
            return;
        }
        r.bytes += len as u64;
        r.progress_accum += len as u64;
        if r.progress_accum >= self.config.progress_quantum {
            r.progress_accum = 0;
            r.last_progress = now;
        }
        if end_stream {
            r.complete = true;
            r.completed_at = Some(now);
            self.completed.insert(r.object, now);
        }
    }

    /// The server reset a stream.
    pub fn on_reset(&mut self, stream: StreamId, now: SimTime) {
        if let Some(&req) = self.by_stream.get(&stream) {
            let r = &mut self.requests[req];
            if !r.complete {
                // Retry path shared with stalls: mark for re-issue.
                r.stream = None;
                r.issued = false;
                r.due = now;
            }
        }
    }

    /// The transport died: everything incomplete fails.
    pub fn on_connection_dead(&mut self, _now: SimTime) {
        self.connection_dead = true;
        for r in &mut self.requests {
            if !r.complete {
                r.failed = true;
            }
        }
    }

    /// The earliest instant at which the browser needs to act, if any.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        if self.connection_dead {
            return None;
        }
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        for r in &self.requests {
            if r.failed || r.complete {
                continue;
            }
            if !r.issued {
                consider(r.due);
            } else if r.stream.is_some() {
                consider(r.last_progress + self.config.stall_timeout);
            }
        }
        next
    }

    /// Advances the state machine and returns commands due at `now`.
    pub fn poll_cmds(&mut self, now: SimTime) -> Vec<BrowserCmd> {
        if self.connection_dead || self.started_at.is_none() {
            return Vec::new();
        }
        let mut cmds = Vec::new();
        self.trigger_phases(now);
        self.check_stalls(now, &mut cmds);
        self.issue_due(now, &mut cmds);
        cmds
    }

    fn trigger_phases(&mut self, now: SimTime) {
        let started_at = self.started_at.expect("started");
        for i in 0..self.plan.phases.len() {
            if self.phase_progress[i] != PhaseProgress::Pending {
                continue;
            }
            let fire = match self.plan.phases[i].trigger {
                Trigger::Start => Some(started_at),
                Trigger::AfterComplete(object) => {
                    if let Some(&at) = self.completed.get(&object) {
                        Some(at)
                    } else if self.object_failed(object) {
                        self.phase_progress[i] = PhaseProgress::Cancelled;
                        continue;
                    } else {
                        None
                    }
                }
            };
            let Some(fire) = fire else { continue };
            if fire > now {
                continue;
            }
            self.phase_progress[i] = PhaseProgress::Scheduled;
            let mut due = fire + self.plan.phases[i].delay;
            let steps = self.plan.phases[i].steps.clone();
            for step in steps {
                let noise = self.rng.sample_duration(&self.config.request_noise);
                let frac = self.config.gap_noise_frac.clamp(0.0, 1.0);
                let scale = 1.0 - frac + 2.0 * frac * self.rng.gen_unit_f64();
                due = due + step.gap.mul_f64(scale) + noise;
                let path = self.paths[step.object.0 as usize].clone();
                let reissue = self.plan.phases[i].reissue;
                self.requests.push(ReqState {
                    object: step.object,
                    path,
                    reissue,
                    due,
                    issued: false,
                    stream: None,
                    last_progress: due,
                    progress_accum: 0,
                    bytes: 0,
                    complete: false,
                    failed: false,
                    attempts: 0,
                    issued_at: Vec::new(),
                    completed_at: None,
                    resets_sent: 0,
                });
            }
        }
    }

    fn object_failed(&self, object: ObjectId) -> bool {
        self.requests.iter().any(|r| r.object == object && r.failed)
    }

    fn check_stalls(&mut self, now: SimTime, cmds: &mut Vec<BrowserCmd>) {
        for req in 0..self.requests.len() {
            let r = &mut self.requests[req];
            if r.complete || r.failed || !r.issued {
                continue;
            }
            let Some(stream) = r.stream else { continue };
            if now.saturating_since(r.last_progress) < self.config.stall_timeout {
                continue;
            }
            // Stalled: reset, then maybe retry.
            r.resets_sent += 1;
            cmds.push(BrowserCmd::ResetStream { stream });
            self.by_stream.remove(&stream);
            let r = &mut self.requests[req];
            r.stream = None;
            if self.config.reissue_on_stall && r.reissue && r.attempts < self.config.max_attempts {
                r.issued = false;
                r.due = now;
                r.last_progress = now;
                r.progress_accum = 0;
                r.bytes = 0;
            } else {
                r.failed = true;
            }
        }
    }

    fn issue_due(&mut self, now: SimTime, cmds: &mut Vec<BrowserCmd>) {
        for req in 0..self.requests.len() {
            let r = &mut self.requests[req];
            if r.issued || r.complete || r.failed || r.due > now {
                continue;
            }
            if r.attempts >= self.config.max_attempts {
                r.failed = true;
                continue;
            }
            r.issued = true;
            r.attempts += 1;
            r.issued_at.push(now);
            r.last_progress = now;
            cmds.push(BrowserCmd::SendRequest {
                req,
                path: r.path.clone(),
                object: r.object,
            });
        }
    }

    /// True when every planned request has completed or failed and no phase
    /// can still fire.
    pub fn is_done(&self) -> bool {
        if self.connection_dead {
            return true;
        }
        let phases_settled = self
            .phase_progress
            .iter()
            .all(|p| *p != PhaseProgress::Pending)
            || self.no_pending_phase_can_fire();
        phases_settled && self.requests.iter().all(|r| r.complete || r.failed)
    }

    fn no_pending_phase_can_fire(&self) -> bool {
        self.phase_progress
            .iter()
            .zip(&self.plan.phases)
            .filter(|(p, _)| **p == PhaseProgress::Pending)
            .all(|(_, phase)| match phase.trigger {
                Trigger::Start => false,
                Trigger::AfterComplete(object) => self.object_failed(object),
            })
    }

    /// Final per-request outcomes, in issue-plan order.
    pub fn outcomes(&self) -> Vec<RequestOutcome> {
        self.requests
            .iter()
            .map(|r| RequestOutcome {
                object: r.object,
                issued_at: r.issued_at.clone(),
                completed_at: r.completed_at,
                bytes: r.bytes,
                resets_sent: r.resets_sent,
                failed: r.failed,
            })
            .collect()
    }

    /// Whether a specific object completed.
    pub fn object_complete(&self, object: ObjectId) -> bool {
        self.completed.contains_key(&object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;
    use crate::plan::{Phase, PlanStep};

    fn site2() -> Website {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Html, 1000);
        site.add("/b", ObjectKind::Image, 2000);
        site
    }

    fn plan2() -> BrowsePlan {
        BrowsePlan::new()
            .with_phase(Phase {
                trigger: Trigger::Start,
                delay: SimDuration::ZERO,
                steps: vec![PlanStep {
                    object: ObjectId(0),
                    gap: SimDuration::ZERO,
                }],
                reissue: true,
            })
            .with_phase(Phase {
                trigger: Trigger::AfterComplete(ObjectId(0)),
                delay: SimDuration::from_millis(10),
                steps: vec![PlanStep {
                    object: ObjectId(1),
                    gap: SimDuration::ZERO,
                }],
                reissue: true,
            })
    }

    fn browser() -> Browser {
        Browser::new(
            &site2(),
            plan2(),
            BrowserConfig::default(),
            SimRng::seed_from(1),
        )
    }

    #[test]
    fn issues_start_phase_immediately() {
        let mut b = browser();
        b.start(SimTime::ZERO);
        let cmds = b.poll_cmds(SimTime::ZERO);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(
            &cmds[0],
            BrowserCmd::SendRequest { path, object, .. }
                if path == "/a" && *object == ObjectId(0)
        ));
    }

    #[test]
    fn dependent_phase_waits_for_completion() {
        let mut b = browser();
        b.start(SimTime::ZERO);
        let cmds = b.poll_cmds(SimTime::ZERO);
        let req = match &cmds[0] {
            BrowserCmd::SendRequest { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        b.note_stream(req, StreamId(1));
        // Nothing due before /a completes.
        assert!(b.poll_cmds(SimTime::from_millis(100)).is_empty());
        b.on_data(StreamId(1), 1000, true, SimTime::from_millis(200));
        // The dependent request fires 10 ms after completion.
        assert!(b.poll_cmds(SimTime::from_millis(205)).is_empty());
        let cmds = b.poll_cmds(SimTime::from_millis(210));
        assert_eq!(cmds.len(), 1);
        assert!(matches!(
            &cmds[0],
            BrowserCmd::SendRequest { path, .. } if path == "/b"
        ));
    }

    #[test]
    fn stall_resets_and_reissues() {
        let mut b = browser();
        b.start(SimTime::ZERO);
        let cmds = b.poll_cmds(SimTime::ZERO);
        let req = match &cmds[0] {
            BrowserCmd::SendRequest { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        b.note_stream(req, StreamId(1));
        // Some progress at t=1s, then silence past the 3 s stall timeout.
        b.on_data(StreamId(1), 100, false, SimTime::from_secs(1));
        let cmds = b.poll_cmds(SimTime::from_secs(5));
        assert_eq!(cmds.len(), 2);
        assert_eq!(
            cmds[0],
            BrowserCmd::ResetStream {
                stream: StreamId(1)
            }
        );
        assert!(matches!(
            &cmds[1],
            BrowserCmd::SendRequest { path, .. } if path == "/a"
        ));
        let outcome = &b.outcomes()[0];
        assert_eq!(outcome.resets_sent, 1);
        assert_eq!(outcome.issued_at.len(), 2);
    }

    #[test]
    fn attempts_are_bounded() {
        let mut b = Browser::new(
            &site2(),
            plan2(),
            BrowserConfig {
                max_attempts: 2,
                ..BrowserConfig::default()
            },
            SimRng::seed_from(1),
        );
        b.start(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut stream = 1;
        for _ in 0..4 {
            let cmds = b.poll_cmds(now);
            for cmd in cmds {
                if let BrowserCmd::SendRequest { req, .. } = cmd {
                    b.note_stream(req, StreamId(stream));
                    stream += 2;
                }
            }
            now += SimDuration::from_secs(10);
        }
        let outcome = &b.outcomes()[0];
        assert!(outcome.failed);
        assert_eq!(outcome.issued_at.len(), 2);
        // Phase 2 is cancelled because its trigger failed.
        assert!(b.is_done());
    }

    #[test]
    fn reissue_disabled_fails_on_stall() {
        let mut b = Browser::new(
            &site2(),
            plan2(),
            BrowserConfig {
                reissue_on_stall: false,
                ..BrowserConfig::default()
            },
            SimRng::seed_from(1),
        );
        b.start(SimTime::ZERO);
        let cmds = b.poll_cmds(SimTime::ZERO);
        if let BrowserCmd::SendRequest { req, .. } = &cmds[0] {
            b.note_stream(*req, StreamId(1));
        }
        let cmds = b.poll_cmds(SimTime::from_secs(10));
        assert_eq!(cmds.len(), 1); // reset only, no re-request
        assert!(b.outcomes()[0].failed);
    }

    #[test]
    fn completion_flow_and_done() {
        let mut b = browser();
        b.start(SimTime::ZERO);
        let cmds = b.poll_cmds(SimTime::ZERO);
        if let BrowserCmd::SendRequest { req, .. } = &cmds[0] {
            b.note_stream(*req, StreamId(1));
        }
        b.on_headers(StreamId(1), SimTime::from_millis(50));
        b.on_data(StreamId(1), 500, false, SimTime::from_millis(60));
        b.on_data(StreamId(1), 500, true, SimTime::from_millis(70));
        assert!(b.object_complete(ObjectId(0)));
        assert!(!b.is_done());
        let cmds = b.poll_cmds(SimTime::from_millis(100));
        if let BrowserCmd::SendRequest { req, .. } = &cmds[0] {
            b.note_stream(*req, StreamId(3));
        }
        b.on_data(StreamId(3), 2000, true, SimTime::from_millis(200));
        assert!(b.is_done());
        let outcomes = b.outcomes();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| !o.failed));
        assert_eq!(outcomes[1].bytes, 2000);
    }

    #[test]
    fn server_reset_triggers_retry() {
        let mut b = browser();
        b.start(SimTime::ZERO);
        let cmds = b.poll_cmds(SimTime::ZERO);
        if let BrowserCmd::SendRequest { req, .. } = &cmds[0] {
            b.note_stream(*req, StreamId(1));
        }
        b.on_reset(StreamId(1), SimTime::from_millis(10));
        let cmds = b.poll_cmds(SimTime::from_millis(10));
        assert!(matches!(&cmds[0], BrowserCmd::SendRequest { path, .. } if path == "/a"));
    }

    #[test]
    fn connection_death_fails_everything() {
        let mut b = browser();
        b.start(SimTime::ZERO);
        b.poll_cmds(SimTime::ZERO);
        b.on_connection_dead(SimTime::from_millis(5));
        assert!(b.is_done());
        assert!(b.outcomes()[0].failed);
        assert_eq!(b.next_wakeup(), None);
    }

    #[test]
    fn next_wakeup_tracks_due_and_stalls() {
        let mut b = browser();
        b.start(SimTime::ZERO);
        let cmds = b.poll_cmds(SimTime::ZERO);
        if let BrowserCmd::SendRequest { req, .. } = &cmds[0] {
            b.note_stream(*req, StreamId(1));
        }
        // In-flight request: wakeup is the stall deadline.
        assert_eq!(
            b.next_wakeup(),
            Some(SimTime::ZERO + SimDuration::from_secs(3))
        );
    }

    #[test]
    fn request_noise_perturbs_schedule() {
        let mut plan = BrowsePlan::new();
        plan.phases.push(Phase {
            trigger: Trigger::Start,
            delay: SimDuration::ZERO,
            steps: vec![
                PlanStep {
                    object: ObjectId(0),
                    gap: SimDuration::from_millis(5),
                },
                PlanStep {
                    object: ObjectId(1),
                    gap: SimDuration::from_millis(5),
                },
            ],
            reissue: true,
        });
        let cfg = BrowserConfig {
            request_noise: DurationDist::Uniform {
                lo: SimDuration::from_millis(1),
                hi: SimDuration::from_millis(20),
            },
            ..BrowserConfig::default()
        };
        let mut b = Browser::new(&site2(), plan, cfg, SimRng::seed_from(3));
        b.start(SimTime::ZERO);
        // At t = 5 ms nothing fires (noise pushed both requests later).
        let early = b.poll_cmds(SimTime::from_millis(5));
        let late = b.poll_cmds(SimTime::from_millis(100));
        assert!(early.len() < 2);
        assert_eq!(early.len() + late.len(), 2);
    }
}
