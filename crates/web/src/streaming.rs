//! Streaming (DASH-like) traffic — the paper's second future-work
//! direction (§VII: "Exploring the suitability of our technique for other
//! types of web traffic, such as streaming", citing the QUIC ADU-inference
//! work of ref \[27\]).
//!
//! A segmented video is a sequence of fixed-duration media chunks whose
//! *sizes* track the content's instantaneous complexity — a per-title
//! fingerprint. The player requests one segment per segment-duration, so
//! the transfers are **naturally serialized**: the defining condition the
//! isidewith attack has to engineer is already present, and an
//! eavesdropper can read the size sequence straight off the record bursts.
//! The `streaming_leak` example demonstrates exactly that.

use h2priv_netsim::{SimDuration, SimRng};

use crate::object::{ObjectId, ObjectKind};
use crate::plan::{BrowsePlan, Phase, PlanStep, Trigger};
use crate::site::Website;

/// A titled, segmented video.
#[derive(Debug, Clone)]
pub struct Video {
    /// Title (catalog key).
    pub title: String,
    /// Segment sizes in bytes — the title's fingerprint.
    pub segment_sizes: Vec<usize>,
}

impl Video {
    /// Synthesizes a title's segment-size fingerprint: a base bitrate with
    /// scene-dependent excursions, deterministic per (title, seed).
    pub fn synthesize(title: &str, segments: usize, seed: u64) -> Video {
        let mut rng = SimRng::seed_from(seed ^ title.bytes().map(u64::from).sum::<u64>());
        let base = 30_000 + rng.gen_range_u64(0..40_000) as usize;
        let mut sizes = Vec::with_capacity(segments);
        let mut scene = base;
        for _ in 0..segments {
            if rng.chance(0.3) {
                // Scene change: jump to a new complexity level.
                scene = base / 2 + rng.gen_range_u64(0..base as u64) as usize;
            }
            let wobble = rng.gen_range_u64(0..5_000) as usize;
            sizes.push(scene + wobble);
        }
        Video {
            title: title.to_owned(),
            segment_sizes: sizes,
        }
    }

    /// Normalized L1 distance between two size sequences (comparable
    /// lengths assumed; extra segments are ignored).
    pub fn distance(&self, observed: &[u64]) -> f64 {
        let n = self.segment_sizes.len().min(observed.len());
        if n == 0 {
            return f64::MAX;
        }
        let mut acc = 0.0;
        for (&expected, &seen) in self.segment_sizes.iter().zip(observed).take(n) {
            let a = expected as f64;
            let b = seen as f64;
            acc += (a - b).abs() / a.max(1.0);
        }
        acc / n as f64
    }
}

/// A streaming session: the site holds one video's segments; the plan
/// requests them paced at the segment duration (the player's steady
/// state).
#[derive(Debug, Clone)]
pub struct StreamingSession {
    /// The website serving the segments.
    pub site: Website,
    /// The playback plan.
    pub plan: BrowsePlan,
    /// Segment object ids, in playback order.
    pub segments: Vec<ObjectId>,
}

/// Builds a session streaming `video` with `segment_gap` between requests
/// (the media segment duration).
pub fn build_session(video: &Video, segment_gap: SimDuration) -> StreamingSession {
    let mut site = Website::new();
    let mut steps = Vec::new();
    let mut segments = Vec::new();
    for (i, &size) in video.segment_sizes.iter().enumerate() {
        let id = site.add(
            format!("/media/{}/seg{i:04}.m4s", video.title),
            ObjectKind::Other,
            size,
        );
        segments.push(id);
        steps.push(PlanStep {
            object: id,
            gap: if i == 0 {
                SimDuration::ZERO
            } else {
                segment_gap
            },
        });
    }
    let plan = BrowsePlan::new().with_phase(Phase {
        trigger: Trigger::Start,
        delay: SimDuration::ZERO,
        steps,
        reissue: true,
    });
    StreamingSession {
        site,
        plan,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_deterministic_and_distinct() {
        let a1 = Video::synthesize("attack-of-the-clones", 20, 7);
        let a2 = Video::synthesize("attack-of-the-clones", 20, 7);
        let b = Video::synthesize("a-new-hope", 20, 7);
        assert_eq!(a1.segment_sizes, a2.segment_sizes);
        assert_ne!(a1.segment_sizes, b.segment_sizes);
    }

    #[test]
    fn distance_is_zero_on_self() {
        let v = Video::synthesize("t", 10, 1);
        let observed: Vec<u64> = v.segment_sizes.iter().map(|&s| s as u64).collect();
        assert!(v.distance(&observed) < 1e-9);
    }

    #[test]
    fn session_structure() {
        let v = Video::synthesize("t", 12, 1);
        let s = build_session(&v, SimDuration::from_secs(2));
        assert_eq!(s.site.len(), 12);
        assert_eq!(s.plan.request_count(), 12);
        assert_eq!(s.plan.phases[0].steps[3].gap, SimDuration::from_secs(2));
    }

    #[test]
    fn distance_separates_titles() {
        let a = Video::synthesize("title-a", 30, 3);
        let b = Video::synthesize("title-b", 30, 3);
        let observed_a: Vec<u64> = a.segment_sizes.iter().map(|&s| s as u64 + 300).collect();
        assert!(a.distance(&observed_a) < b.distance(&observed_a));
    }
}
