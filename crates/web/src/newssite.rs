//! A second target site, for the paper's generality claim (§VII: "Our
//! adversary is built on the general principles stated in the paper and
//! can be extended to other real-world websites/scenarios").
//!
//! A news front page: article HTML, a hero image, and five thumbnails —
//! two of which are deliberately the *same size*. The §II privacy
//! criterion requires object sizes to be unique; the twin thumbnails mark
//! the attack's boundary: serialization still strips the multiplexing,
//! but the size-map predictor must abstain on the collision.

use h2priv_netsim::SimDuration;

use crate::object::{ObjectId, ObjectKind};
use crate::plan::{BrowsePlan, Phase, PlanStep, Trigger};
use crate::site::Website;

/// The constructed news-site scenario.
#[derive(Debug, Clone)]
pub struct NewsSite {
    /// The website.
    pub site: Website,
    /// One front-page visit.
    pub plan: BrowsePlan,
    /// The article HTML.
    pub article: ObjectId,
    /// The hero image.
    pub hero: ObjectId,
    /// The five thumbnails; `thumbs[1]` and `thumbs[3]` share a size.
    pub thumbs: [ObjectId; 5],
}

/// Sizes of the five thumbnails. Indices 1 and 3 collide on purpose.
pub const THUMB_SIZES: [usize; 5] = [24_000, 31_000, 27_500, 31_000, 21_000];

/// Builds the site and a visit plan.
pub fn build() -> NewsSite {
    let mut site = Website::new();
    let ms = SimDuration::from_millis;
    let article = site.add("/2020/03/16/primary-results.html", ObjectKind::Html, 22_000);
    let css = site.add("/static/site.css", ObjectKind::StyleSheet, 64_000);
    let js = site.add("/static/site.js", ObjectKind::JavaScript, 152_000);
    let hero = site.add("/media/hero.jpg", ObjectKind::Image, 85_000);
    let mut thumbs = [article; 5];
    for (i, &size) in THUMB_SIZES.iter().enumerate() {
        thumbs[i] = site.add(format!("/media/thumb{i}.jpg"), ObjectKind::Image, size);
    }
    let plan = BrowsePlan::new()
        .with_phase(Phase {
            trigger: Trigger::Start,
            delay: SimDuration::ZERO,
            steps: vec![PlanStep {
                object: article,
                gap: SimDuration::ZERO,
            }],
            reissue: true,
        })
        .with_phase(Phase {
            trigger: Trigger::AfterComplete(article),
            delay: ms(25),
            steps: vec![
                PlanStep {
                    object: css,
                    gap: SimDuration::ZERO,
                },
                PlanStep {
                    object: js,
                    gap: ms(2),
                },
                PlanStep {
                    object: hero,
                    gap: ms(3),
                },
                PlanStep {
                    object: thumbs[0],
                    gap: ms(1),
                },
                PlanStep {
                    object: thumbs[1],
                    gap: ms(1),
                },
                PlanStep {
                    object: thumbs[2],
                    gap: ms(1),
                },
                PlanStep {
                    object: thumbs[3],
                    gap: ms(1),
                },
                PlanStep {
                    object: thumbs[4],
                    gap: ms(1),
                },
            ],
            reissue: true,
        });
    NewsSite {
        site,
        plan,
        article,
        hero,
        thumbs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let news = build();
        assert_eq!(news.site.len(), 9);
        assert_eq!(news.plan.request_count(), 9);
        assert_eq!(news.plan.request_index(news.article), Some(0));
    }

    #[test]
    fn twin_thumbnails_collide_by_design() {
        let news = build();
        let s1 = news.site.object(news.thumbs[1]).unwrap().size;
        let s3 = news.site.object(news.thumbs[3]).unwrap().size;
        assert_eq!(s1, s3);
        // Everything else is pairwise distinct by ≥ 1 KB.
        let mut sizes: Vec<usize> = news.site.objects().iter().map(|o| o.size).collect();
        sizes.sort_unstable();
        let collisions = sizes
            .windows(2)
            .filter(|w| w[0].abs_diff(w[1]) < 1_000)
            .count();
        assert_eq!(collisions, 1);
    }
}
