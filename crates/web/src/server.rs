//! The website server application: request in, (possibly delayed)
//! response out.
//!
//! Each accepted request becomes a *worker* — the paper's server "thread"
//! (§IV, Fig. 3). A worker starts after a sampled service latency and then
//! hands the whole object to the HTTP/2 mux, where the connection's
//! [`SendPolicy`](h2priv_http2::SendPolicy) decides how concurrently-active
//! workers interleave. The server is deliberately stateless across requests:
//! a re-issued GET for an object already being served spawns another worker
//! serving another copy — exactly the duplicate-service behaviour the paper
//! reports under retransmitted requests (§IV-B).

use std::rc::Rc;

use h2priv_bytes::SharedBytes;
use h2priv_http2::{HeaderField, StreamId};
use h2priv_netsim::{DurationDist, SimRng, SimTime};

use crate::object::ObjectId;
use crate::site::Website;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct SiteServerConfig {
    /// Latency between request arrival and the worker handing bytes to the
    /// mux (disk/cache/application time).
    pub worker_latency: DurationDist,
    /// Size-padding defense: every response body is padded up to the next
    /// multiple of this bucket, collapsing distinct object sizes onto a
    /// few values. This is the classic countermeasure the paper's related
    /// work proposes (refs \[17\]–\[21\]) at "unreasonable CPU and bandwidth
    /// overheads"; the ablation bench quantifies both its protection and
    /// its overhead against the serialization attack.
    pub pad_bucket: Option<usize>,
    /// Constrained-padding defense: a sorted set of canonical body sizes
    /// (Reed & Reiter, arXiv:2108.01753). Each body is padded up to the
    /// smallest canonical size that fits; bodies beyond the largest land
    /// on multiples of it. Derived per-site by `h2priv-defense`'s
    /// `constrained_pad_set`, which bounds the per-object overhead while
    /// collapsing nearby sizes onto one wire size. Takes precedence over
    /// [`pad_bucket`](Self::pad_bucket) when both are set.
    pub pad_sizes: Option<Vec<usize>>,
}

impl Default for SiteServerConfig {
    fn default() -> Self {
        SiteServerConfig {
            worker_latency: DurationDist::None,
            pad_bucket: None,
            pad_sizes: None,
        }
    }
}

/// The canonical padded size for a body of `len` bytes given a sorted
/// size set: the smallest canonical size that fits, or the next multiple
/// of the largest for oversize bodies (mirrors `h2priv-defense`'s
/// `PadSet::pad_to`, kept here so the web crate stays dependency-light).
fn pad_to_canonical(len: usize, sizes: &[usize]) -> usize {
    let Some(&max) = sizes.last() else {
        return len;
    };
    match sizes.binary_search(&len) {
        Ok(_) => len,
        Err(i) if i < sizes.len() => sizes[i],
        Err(_) => len.div_ceil(max) * max,
    }
}

/// A response ready to be transmitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Stream to respond on.
    pub stream: StreamId,
    /// Response header list.
    pub headers: Vec<HeaderField>,
    /// Body bytes. Shared so handing the body to the HTTP/2 mux (and
    /// from there into DATA frames) never copies it.
    pub body: SharedBytes,
    /// The object served (`None` for 404s).
    pub object: Option<ObjectId>,
}

#[derive(Debug)]
struct Worker {
    due: SimTime,
    stream: StreamId,
    object: Option<ObjectId>,
}

/// The server application state machine.
#[derive(Debug)]
pub struct SiteServer {
    /// The site, shared: a fleet shard builds one `Rc<Website>` (bodies
    /// materialized) and every server of the shard serves from it — one
    /// copy of the object table and bodies per shard, not per pair.
    site: Rc<Website>,
    config: SiteServerConfig,
    workers: Vec<Worker>,
    requests_seen: u64,
    rng: SimRng,
}

impl SiteServer {
    /// Creates a server for `site`. Accepts a `Website` by value (it is
    /// wrapped) or an `Rc<Website>` shared with other servers.
    pub fn new(site: impl Into<Rc<Website>>, config: SiteServerConfig, rng: SimRng) -> Self {
        SiteServer {
            site: site.into(),
            config,
            workers: Vec::new(),
            requests_seen: 0,
            rng,
        }
    }

    /// The site being served.
    pub fn site(&self) -> &Website {
        &self.site
    }

    /// Total requests accepted (including duplicates).
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }

    /// Accepts a request: spawns a worker. Returns the time at which the
    /// worker will produce its response (the host should arrange a wakeup).
    pub fn on_request(&mut self, stream: StreamId, path: &str, now: SimTime) -> SimTime {
        self.requests_seen += 1;
        let object = self.site.lookup(path).map(|o| o.id);
        let due = now + self.rng.sample_duration(&self.config.worker_latency);
        self.workers.push(Worker {
            due,
            stream,
            object,
        });
        due
    }

    /// A stream was reset by the client: kill any worker still scheduled
    /// for it (data already handed to the mux is the connection's problem —
    /// it drops pending bytes on RST).
    pub fn on_stream_reset(&mut self, stream: StreamId) {
        self.workers.retain(|w| w.stream != stream);
    }

    /// The earliest pending worker deadline, if any.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.workers.iter().map(|w| w.due).min()
    }

    /// Pops every response whose worker is due at `now`.
    pub fn due_responses(&mut self, now: SimTime) -> Vec<Response> {
        // The pump probes this on every round; skip the drain/rebuild/sort
        // machinery outright when no worker is due yet.
        if !self.workers.iter().any(|w| w.due <= now) {
            return Vec::new();
        }
        let mut due = Vec::new();
        let mut remaining = Vec::new();
        for w in self.workers.drain(..) {
            if w.due <= now {
                due.push(w);
            } else {
                remaining.push(w);
            }
        }
        // Deterministic service order for same-instant workers.
        due.sort_by_key(|w| (w.due, w.stream));
        self.workers = remaining;
        due.into_iter()
            .map(|w| match w.object {
                Some(id) => {
                    let obj = self.site.object(id).expect("worker references site object");
                    // Padding rewrites the body, so the defense paths
                    // materialize their own copy; the undefended path
                    // serves the shared body as-is — the site's
                    // materialized copy when present, else the per-thread
                    // memo.
                    let body = if let Some(padded) = self
                        .config
                        .pad_sizes
                        .as_deref()
                        .map(|sizes| pad_to_canonical(obj.size, sizes))
                        .filter(|&p| p > obj.size)
                    {
                        let mut body = obj.body();
                        body.resize(padded, 0);
                        SharedBytes::from_vec(body)
                    } else if self.config.pad_sizes.is_none() && self.config.pad_bucket.is_some() {
                        let bucket = self.config.pad_bucket.unwrap_or(1).max(1);
                        let mut body = obj.body();
                        let padded = body.len().div_ceil(bucket) * bucket;
                        body.resize(padded, 0);
                        SharedBytes::from_vec(body)
                    } else {
                        self.site
                            .shared_body_of(id)
                            .unwrap_or_else(|| obj.shared_body())
                    };
                    Response {
                        stream: w.stream,
                        headers: vec![
                            HeaderField::new(":status", "200"),
                            HeaderField::new("content-type", obj.kind.content_type()),
                            HeaderField::new("content-length", body.len().to_string()),
                            HeaderField::new("server", "h2priv-sim/0.1"),
                            HeaderField::new("cache-control", "no-store"),
                        ],
                        body,
                        object: Some(id),
                    }
                }
                None => Response {
                    stream: w.stream,
                    headers: vec![
                        HeaderField::new(":status", "404"),
                        HeaderField::new("content-type", "text/plain"),
                        HeaderField::new("server", "h2priv-sim/0.1"),
                    ],
                    body: SharedBytes::from(b"not found"),
                    object: None,
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;
    use h2priv_netsim::SimDuration;

    fn server() -> SiteServer {
        let mut site = Website::new();
        site.add("/page.html", ObjectKind::Html, 9_500);
        site.add("/img.png", ObjectKind::Image, 5_000);
        SiteServer::new(site, SiteServerConfig::default(), SimRng::seed_from(1))
    }

    #[test]
    fn serves_known_path() {
        let mut s = server();
        let due = s.on_request(StreamId(1), "/page.html", SimTime::ZERO);
        assert_eq!(due, SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses.len(), 1);
        let r = &responses[0];
        assert_eq!(r.stream, StreamId(1));
        assert_eq!(r.body.len(), 9_500);
        assert_eq!(r.object, Some(ObjectId(0)));
        assert!(r.headers.contains(&HeaderField::new(":status", "200")));
        assert!(r
            .headers
            .contains(&HeaderField::new("content-length", "9500")));
    }

    #[test]
    fn unknown_path_is_404() {
        let mut s = server();
        s.on_request(StreamId(3), "/nope", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses[0].object, None);
        assert!(responses[0]
            .headers
            .contains(&HeaderField::new(":status", "404")));
    }

    #[test]
    fn worker_latency_defers_response() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Other, 10);
        let cfg = SiteServerConfig {
            worker_latency: DurationDist::Constant(SimDuration::from_millis(7)),
            pad_bucket: None,
            pad_sizes: None,
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        let due = s.on_request(StreamId(1), "/a", SimTime::ZERO);
        assert_eq!(due, SimTime::from_millis(7));
        assert!(s.due_responses(SimTime::from_millis(3)).is_empty());
        assert_eq!(s.next_wakeup(), Some(SimTime::from_millis(7)));
        assert_eq!(s.due_responses(SimTime::from_millis(7)).len(), 1);
        assert_eq!(s.next_wakeup(), None);
    }

    #[test]
    fn duplicate_requests_spawn_duplicate_workers() {
        // The §IV-B behaviour: a re-issued GET is served again in full.
        let mut s = server();
        s.on_request(StreamId(1), "/img.png", SimTime::ZERO);
        s.on_request(StreamId(5), "/img.png", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].body, responses[1].body);
        assert_eq!(s.requests_seen(), 2);
    }

    #[test]
    fn reset_kills_scheduled_worker() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Other, 10);
        let cfg = SiteServerConfig {
            worker_latency: DurationDist::Constant(SimDuration::from_millis(7)),
            pad_bucket: None,
            pad_sizes: None,
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        s.on_request(StreamId(1), "/a", SimTime::ZERO);
        s.on_stream_reset(StreamId(1));
        assert!(s.due_responses(SimTime::from_millis(10)).is_empty());
    }

    #[test]
    fn padding_rounds_bodies_up() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Image, 5_200);
        site.add("/b", ObjectKind::Image, 6_800);
        let cfg = SiteServerConfig {
            pad_bucket: Some(4_096),
            ..SiteServerConfig::default()
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        s.on_request(StreamId(1), "/a", SimTime::ZERO);
        s.on_request(StreamId(3), "/b", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        // Both land in the same 8 KiB bucket: indistinguishable sizes.
        assert_eq!(responses[0].body.len(), 8_192);
        assert_eq!(responses[1].body.len(), 8_192);
        assert!(responses[0]
            .headers
            .contains(&HeaderField::new("content-length", "8192")));
    }

    #[test]
    fn pad_sizes_collapse_onto_canonical_set() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Image, 5_200);
        site.add("/b", ObjectKind::Image, 6_800);
        site.add("/big", ObjectKind::Image, 20_000);
        let cfg = SiteServerConfig {
            pad_sizes: Some(vec![7_000]),
            ..SiteServerConfig::default()
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        s.on_request(StreamId(1), "/a", SimTime::ZERO);
        s.on_request(StreamId(3), "/b", SimTime::ZERO);
        s.on_request(StreamId(5), "/big", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        // Both small objects land on the canonical 7000; the oversize one
        // rounds to the coarse grid (3 × 7000).
        assert_eq!(responses[0].body.len(), 7_000);
        assert_eq!(responses[1].body.len(), 7_000);
        assert_eq!(responses[2].body.len(), 21_000);
        assert!(responses[0]
            .headers
            .contains(&HeaderField::new("content-length", "7000")));
    }

    #[test]
    fn exact_canonical_size_serves_shared_body() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Image, 4_096);
        let cfg = SiteServerConfig {
            pad_sizes: Some(vec![4_096]),
            ..SiteServerConfig::default()
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        s.on_request(StreamId(1), "/a", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses[0].body.len(), 4_096);
    }

    #[test]
    fn same_instant_workers_serve_in_stream_order() {
        let mut s = server();
        s.on_request(StreamId(7), "/img.png", SimTime::ZERO);
        s.on_request(StreamId(3), "/page.html", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses[0].stream, StreamId(3));
        assert_eq!(responses[1].stream, StreamId(7));
    }
}
