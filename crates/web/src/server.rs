//! The website server application: request in, (possibly delayed)
//! response out.
//!
//! Each accepted request becomes a *worker* — the paper's server "thread"
//! (§IV, Fig. 3). A worker starts after a sampled service latency and then
//! hands the whole object to the HTTP/2 mux, where the connection's
//! [`SendPolicy`](h2priv_http2::SendPolicy) decides how concurrently-active
//! workers interleave. The server is deliberately stateless across requests:
//! a re-issued GET for an object already being served spawns another worker
//! serving another copy — exactly the duplicate-service behaviour the paper
//! reports under retransmitted requests (§IV-B).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use h2priv_bytes::SharedBytes;
use h2priv_http2::{HeaderField, StreamId};
use h2priv_netsim::{DurationDist, SimDuration, SimRng, SimTime};

use crate::object::ObjectId;
use crate::site::Website;

/// Worker-pool sizing and control-plane costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Concurrent workers the pool backs. In fleet runs one pool is shared
    /// by every server of a shard, so one hostile connection's held
    /// workers starve bystander pairs — the resource coupling the
    /// slow-rate DoS literature exploits.
    pub capacity: usize,
    /// Control-plane time consumed applying one non-ACK SETTINGS frame
    /// (table resize, ACK, lock traffic — deliberately coarse). Arrivals
    /// faster than this grow the backlog without bound: the SETTINGS-flood
    /// starvation mechanism.
    pub settings_cost: SimDuration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            capacity: 16,
            settings_cost: SimDuration::from_millis(10),
        }
    }
}

/// Pool counters, reported by the `dos` exhibit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests granted a worker.
    pub admitted: u64,
    /// Requests that had to park for a free worker.
    pub parked: u64,
    /// Non-ACK SETTINGS frames billed to the control plane.
    pub settings_processed: u64,
    /// Parser threads captured by an unfinished header sequence.
    pub parser_holds: u64,
}

/// A bounded worker pool modeling the server's thread budget, shared
/// between the servers of a shard. Request workers draw from `capacity`;
/// a connection whose frame parser is wedged mid-HEADERS-sequence *holds*
/// a thread outright (thread-per-connection semantics — the hold may
/// overdraw the pool, and everything else waits).
#[derive(Debug)]
pub struct WorkerPool {
    config: PoolConfig,
    in_use: usize,
    parser_held: usize,
    /// Control plane busy until here; no worker fires earlier.
    busy_until: SimTime,
    stats: PoolStats,
}

impl WorkerPool {
    /// Creates a pool.
    pub fn new(config: PoolConfig) -> Self {
        WorkerPool {
            config,
            in_use: 0,
            parser_held: 0,
            busy_until: SimTime::ZERO,
            stats: PoolStats::default(),
        }
    }

    /// Takes a worker if one is free.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_use + self.parser_held < self.config.capacity {
            self.in_use += 1;
            self.stats.admitted += 1;
            true
        } else {
            false
        }
    }

    /// Returns a worker.
    pub fn release(&mut self) {
        self.in_use = self.in_use.saturating_sub(1);
    }

    /// A connection's parser blocked mid-sequence: capture a thread. May
    /// overdraw `capacity` — the blocked thread is real either way.
    pub fn hold_parser(&mut self) {
        self.parser_held += 1;
        self.stats.parser_holds += 1;
    }

    /// The blocked parser came back (sequence finished or connection
    /// dropped).
    pub fn release_parser(&mut self) {
        self.parser_held = self.parser_held.saturating_sub(1);
    }

    /// Bills one non-ACK SETTINGS frame to the control plane.
    pub fn note_settings(&mut self, now: SimTime) {
        self.busy_until = self.busy_until.max(now) + self.config.settings_cost;
        self.stats.settings_processed += 1;
    }

    /// No worker output before this instant.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Workers currently out (request workers only).
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Threads captured by blocked parsers.
    pub fn parser_held(&self) -> usize {
        self.parser_held
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct SiteServerConfig {
    /// Latency between request arrival and the worker handing bytes to the
    /// mux (disk/cache/application time).
    pub worker_latency: DurationDist,
    /// Size-padding defense: every response body is padded up to the next
    /// multiple of this bucket, collapsing distinct object sizes onto a
    /// few values. This is the classic countermeasure the paper's related
    /// work proposes (refs \[17\]–\[21\]) at "unreasonable CPU and bandwidth
    /// overheads"; the ablation bench quantifies both its protection and
    /// its overhead against the serialization attack.
    pub pad_bucket: Option<usize>,
    /// Constrained-padding defense: a sorted set of canonical body sizes
    /// (Reed & Reiter, arXiv:2108.01753). Each body is padded up to the
    /// smallest canonical size that fits; bodies beyond the largest land
    /// on multiples of it. Derived per-site by `h2priv-defense`'s
    /// `constrained_pad_set`, which bounds the per-object overhead while
    /// collapsing nearby sizes onto one wire size. Takes precedence over
    /// [`pad_bucket`](Self::pad_bucket) when both are set.
    pub pad_sizes: Option<Vec<usize>>,
}

impl Default for SiteServerConfig {
    fn default() -> Self {
        SiteServerConfig {
            worker_latency: DurationDist::None,
            pad_bucket: None,
            pad_sizes: None,
        }
    }
}

/// The canonical padded size for a body of `len` bytes given a sorted
/// size set: the smallest canonical size that fits, or the next multiple
/// of the largest for oversize bodies (mirrors `h2priv-defense`'s
/// `PadSet::pad_to`, kept here so the web crate stays dependency-light).
fn pad_to_canonical(len: usize, sizes: &[usize]) -> usize {
    let Some(&max) = sizes.last() else {
        return len;
    };
    match sizes.binary_search(&len) {
        Ok(_) => len,
        Err(i) if i < sizes.len() => sizes[i],
        Err(_) => len.div_ceil(max) * max,
    }
}

/// A response ready to be transmitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Stream to respond on.
    pub stream: StreamId,
    /// Response header list.
    pub headers: Vec<HeaderField>,
    /// Body bytes. Shared so handing the body to the HTTP/2 mux (and
    /// from there into DATA frames) never copies it.
    pub body: SharedBytes,
    /// The object served (`None` for 404s).
    pub object: Option<ObjectId>,
}

#[derive(Debug)]
struct Worker {
    due: SimTime,
    stream: StreamId,
    object: Option<ObjectId>,
}

/// The server application state machine.
#[derive(Debug)]
pub struct SiteServer {
    /// The site, shared: a fleet shard builds one `Rc<Website>` (bodies
    /// materialized) and every server of the shard serves from it — one
    /// copy of the object table and bodies per shard, not per pair.
    site: Rc<Website>,
    config: SiteServerConfig,
    workers: Vec<Worker>,
    requests_seen: u64,
    rng: SimRng,
    /// Worker budget, shared with the shard's other servers. `None` keeps
    /// the legacy unbounded thread-per-request behavior (and the exact
    /// schedules of every pre-existing exhibit).
    pool: Option<Rc<RefCell<WorkerPool>>>,
    /// Requests waiting for a worker, admission order.
    parked: VecDeque<(StreamId, String)>,
    /// Streams holding a pool worker until fully served (or reset).
    serving: Vec<StreamId>,
}

impl SiteServer {
    /// Creates a server for `site`. Accepts a `Website` by value (it is
    /// wrapped) or an `Rc<Website>` shared with other servers.
    pub fn new(site: impl Into<Rc<Website>>, config: SiteServerConfig, rng: SimRng) -> Self {
        SiteServer {
            site: site.into(),
            config,
            workers: Vec::new(),
            requests_seen: 0,
            rng,
            pool: None,
            parked: VecDeque::new(),
            serving: Vec::new(),
        }
    }

    /// Attaches a worker pool (shared across a shard's servers). Requests
    /// then pass deterministic admission: a free worker serves, otherwise
    /// the request parks FIFO until [`release_stream`](Self::release_stream)
    /// frees one.
    pub fn set_pool(&mut self, pool: Rc<RefCell<WorkerPool>>) {
        self.pool = Some(pool);
    }

    /// The attached pool, if any.
    pub fn pool(&self) -> Option<&Rc<RefCell<WorkerPool>>> {
        self.pool.as_ref()
    }

    /// Requests parked for a free worker.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Streams currently holding a pool worker.
    pub fn serving(&self) -> &[StreamId] {
        &self.serving
    }

    /// The site being served.
    pub fn site(&self) -> &Website {
        &self.site
    }

    /// Total requests accepted (including duplicates).
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }

    /// Accepts a request: spawns a worker (or, with a full pool attached,
    /// parks the request). Returns the time at which the worker will
    /// produce its response — `None` while parked; admission happens in
    /// [`release_stream`](Self::release_stream) and the host learns the
    /// new deadline from [`next_wakeup`](Self::next_wakeup).
    pub fn on_request(&mut self, stream: StreamId, path: &str, now: SimTime) -> Option<SimTime> {
        self.requests_seen += 1;
        if let Some(pool) = &self.pool {
            if !pool.borrow_mut().try_acquire() {
                pool.borrow_mut().stats.parked += 1;
                self.parked.push_back((stream, path.to_owned()));
                return None;
            }
            self.serving.push(stream);
        }
        Some(self.spawn_worker(stream, path, now))
    }

    fn spawn_worker(&mut self, stream: StreamId, path: &str, now: SimTime) -> SimTime {
        let object = self.site.lookup(path).map(|o| o.id);
        let due = now + self.rng.sample_duration(&self.config.worker_latency);
        self.workers.push(Worker {
            due,
            stream,
            object,
        });
        due
    }

    /// A stream was reset by the client: kill any worker still scheduled
    /// for it (data already handed to the mux is the connection's problem —
    /// it drops pending bytes on RST) and drop any parked copy.
    pub fn on_stream_reset(&mut self, stream: StreamId) {
        self.workers.retain(|w| w.stream != stream);
        self.parked.retain(|(s, _)| *s != stream);
    }

    /// A stream this server was serving is finished (fully drained, reset,
    /// or abandoned at connection teardown): return its worker to the pool
    /// and admit parked requests into the freed capacity. No-op for
    /// streams that hold no worker, so the host may call it liberally.
    pub fn release_stream(&mut self, stream: StreamId, now: SimTime) {
        let Some(pool) = self.pool.clone() else {
            return;
        };
        let Some(at) = self.serving.iter().position(|&s| s == stream) else {
            return;
        };
        self.serving.remove(at);
        pool.borrow_mut().release();
        self.admit_parked(now);
    }

    /// Admits parked requests into whatever pool capacity is currently
    /// free. Called from [`release_stream`](Self::release_stream) and by
    /// the host each pump — capacity may have been freed by *another*
    /// connection sharing the pool.
    pub fn admit_parked(&mut self, now: SimTime) {
        let Some(pool) = self.pool.clone() else {
            return;
        };
        while !self.parked.is_empty() && pool.borrow_mut().try_acquire() {
            let (stream, path) = self.parked.pop_front().expect("checked non-empty");
            self.serving.push(stream);
            self.spawn_worker(stream, &path, now);
        }
    }

    /// Connection teardown: drop every scheduled worker and parked
    /// request, and return all held workers to the pool so the shard's
    /// other connections can use them. The host calls this when the
    /// transport dies or the guard closes the connection.
    pub fn shutdown(&mut self) {
        self.workers.clear();
        self.parked.clear();
        if let Some(pool) = &self.pool {
            let mut pool = pool.borrow_mut();
            for _ in self.serving.drain(..) {
                pool.release();
            }
        } else {
            self.serving.clear();
        }
    }

    /// The earliest pending worker deadline, if any — deferred past the
    /// pool's control-plane busy horizon when one is attached.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let due = self.workers.iter().map(|w| w.due).min()?;
        Some(match &self.pool {
            Some(pool) => due.max(pool.borrow().busy_until()),
            None => due,
        })
    }

    /// Pops every response whose worker is due at `now`.
    pub fn due_responses(&mut self, now: SimTime) -> Vec<Response> {
        // A busy control plane (SETTINGS backlog) stalls every worker.
        if let Some(pool) = &self.pool {
            if pool.borrow().busy_until() > now {
                return Vec::new();
            }
        }
        // The pump probes this on every round; skip the drain/rebuild/sort
        // machinery outright when no worker is due yet.
        if !self.workers.iter().any(|w| w.due <= now) {
            return Vec::new();
        }
        let mut due = Vec::new();
        let mut remaining = Vec::new();
        for w in self.workers.drain(..) {
            if w.due <= now {
                due.push(w);
            } else {
                remaining.push(w);
            }
        }
        // Deterministic service order for same-instant workers.
        due.sort_by_key(|w| (w.due, w.stream));
        self.workers = remaining;
        due.into_iter()
            .map(|w| match w.object {
                Some(id) => {
                    let obj = self.site.object(id).expect("worker references site object");
                    // Padding rewrites the body, so the defense paths
                    // materialize their own copy; the undefended path
                    // serves the shared body as-is — the site's
                    // materialized copy when present, else the per-thread
                    // memo.
                    let body = if let Some(padded) = self
                        .config
                        .pad_sizes
                        .as_deref()
                        .map(|sizes| pad_to_canonical(obj.size, sizes))
                        .filter(|&p| p > obj.size)
                    {
                        let mut body = obj.body();
                        body.resize(padded, 0);
                        SharedBytes::from_vec(body)
                    } else if self.config.pad_sizes.is_none() && self.config.pad_bucket.is_some() {
                        let bucket = self.config.pad_bucket.unwrap_or(1).max(1);
                        let mut body = obj.body();
                        let padded = body.len().div_ceil(bucket) * bucket;
                        body.resize(padded, 0);
                        SharedBytes::from_vec(body)
                    } else {
                        self.site
                            .shared_body_of(id)
                            .unwrap_or_else(|| obj.shared_body())
                    };
                    Response {
                        stream: w.stream,
                        headers: vec![
                            HeaderField::new(":status", "200"),
                            HeaderField::new("content-type", obj.kind.content_type()),
                            HeaderField::new("content-length", body.len().to_string()),
                            HeaderField::new("server", "h2priv-sim/0.1"),
                            HeaderField::new("cache-control", "no-store"),
                        ],
                        body,
                        object: Some(id),
                    }
                }
                None => Response {
                    stream: w.stream,
                    headers: vec![
                        HeaderField::new(":status", "404"),
                        HeaderField::new("content-type", "text/plain"),
                        HeaderField::new("server", "h2priv-sim/0.1"),
                    ],
                    body: SharedBytes::from(b"not found"),
                    object: None,
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;
    use h2priv_netsim::SimDuration;

    fn server() -> SiteServer {
        let mut site = Website::new();
        site.add("/page.html", ObjectKind::Html, 9_500);
        site.add("/img.png", ObjectKind::Image, 5_000);
        SiteServer::new(site, SiteServerConfig::default(), SimRng::seed_from(1))
    }

    #[test]
    fn serves_known_path() {
        let mut s = server();
        let due = s.on_request(StreamId(1), "/page.html", SimTime::ZERO);
        assert_eq!(due, Some(SimTime::ZERO));
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses.len(), 1);
        let r = &responses[0];
        assert_eq!(r.stream, StreamId(1));
        assert_eq!(r.body.len(), 9_500);
        assert_eq!(r.object, Some(ObjectId(0)));
        assert!(r.headers.contains(&HeaderField::new(":status", "200")));
        assert!(r
            .headers
            .contains(&HeaderField::new("content-length", "9500")));
    }

    #[test]
    fn unknown_path_is_404() {
        let mut s = server();
        s.on_request(StreamId(3), "/nope", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses[0].object, None);
        assert!(responses[0]
            .headers
            .contains(&HeaderField::new(":status", "404")));
    }

    #[test]
    fn worker_latency_defers_response() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Other, 10);
        let cfg = SiteServerConfig {
            worker_latency: DurationDist::Constant(SimDuration::from_millis(7)),
            pad_bucket: None,
            pad_sizes: None,
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        let due = s.on_request(StreamId(1), "/a", SimTime::ZERO);
        assert_eq!(due, Some(SimTime::from_millis(7)));
        assert!(s.due_responses(SimTime::from_millis(3)).is_empty());
        assert_eq!(s.next_wakeup(), Some(SimTime::from_millis(7)));
        assert_eq!(s.due_responses(SimTime::from_millis(7)).len(), 1);
        assert_eq!(s.next_wakeup(), None);
    }

    #[test]
    fn duplicate_requests_spawn_duplicate_workers() {
        // The §IV-B behaviour: a re-issued GET is served again in full.
        let mut s = server();
        s.on_request(StreamId(1), "/img.png", SimTime::ZERO);
        s.on_request(StreamId(5), "/img.png", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].body, responses[1].body);
        assert_eq!(s.requests_seen(), 2);
    }

    #[test]
    fn reset_kills_scheduled_worker() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Other, 10);
        let cfg = SiteServerConfig {
            worker_latency: DurationDist::Constant(SimDuration::from_millis(7)),
            pad_bucket: None,
            pad_sizes: None,
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        s.on_request(StreamId(1), "/a", SimTime::ZERO);
        s.on_stream_reset(StreamId(1));
        assert!(s.due_responses(SimTime::from_millis(10)).is_empty());
    }

    #[test]
    fn padding_rounds_bodies_up() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Image, 5_200);
        site.add("/b", ObjectKind::Image, 6_800);
        let cfg = SiteServerConfig {
            pad_bucket: Some(4_096),
            ..SiteServerConfig::default()
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        s.on_request(StreamId(1), "/a", SimTime::ZERO);
        s.on_request(StreamId(3), "/b", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        // Both land in the same 8 KiB bucket: indistinguishable sizes.
        assert_eq!(responses[0].body.len(), 8_192);
        assert_eq!(responses[1].body.len(), 8_192);
        assert!(responses[0]
            .headers
            .contains(&HeaderField::new("content-length", "8192")));
    }

    #[test]
    fn pad_sizes_collapse_onto_canonical_set() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Image, 5_200);
        site.add("/b", ObjectKind::Image, 6_800);
        site.add("/big", ObjectKind::Image, 20_000);
        let cfg = SiteServerConfig {
            pad_sizes: Some(vec![7_000]),
            ..SiteServerConfig::default()
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        s.on_request(StreamId(1), "/a", SimTime::ZERO);
        s.on_request(StreamId(3), "/b", SimTime::ZERO);
        s.on_request(StreamId(5), "/big", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        // Both small objects land on the canonical 7000; the oversize one
        // rounds to the coarse grid (3 × 7000).
        assert_eq!(responses[0].body.len(), 7_000);
        assert_eq!(responses[1].body.len(), 7_000);
        assert_eq!(responses[2].body.len(), 21_000);
        assert!(responses[0]
            .headers
            .contains(&HeaderField::new("content-length", "7000")));
    }

    #[test]
    fn exact_canonical_size_serves_shared_body() {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Image, 4_096);
        let cfg = SiteServerConfig {
            pad_sizes: Some(vec![4_096]),
            ..SiteServerConfig::default()
        };
        let mut s = SiteServer::new(site, cfg, SimRng::seed_from(1));
        s.on_request(StreamId(1), "/a", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses[0].body.len(), 4_096);
    }

    #[test]
    fn same_instant_workers_serve_in_stream_order() {
        let mut s = server();
        s.on_request(StreamId(7), "/img.png", SimTime::ZERO);
        s.on_request(StreamId(3), "/page.html", SimTime::ZERO);
        let responses = s.due_responses(SimTime::ZERO);
        assert_eq!(responses[0].stream, StreamId(3));
        assert_eq!(responses[1].stream, StreamId(7));
    }

    fn pooled_server(capacity: usize) -> (SiteServer, Rc<RefCell<WorkerPool>>) {
        let mut site = Website::new();
        site.add("/a", ObjectKind::Other, 10);
        let pool = Rc::new(RefCell::new(WorkerPool::new(PoolConfig {
            capacity,
            ..PoolConfig::default()
        })));
        let mut s = SiteServer::new(site, SiteServerConfig::default(), SimRng::seed_from(1));
        s.set_pool(Rc::clone(&pool));
        (s, pool)
    }

    #[test]
    fn full_pool_parks_requests_and_releases_admit_fifo() {
        let (mut s, pool) = pooled_server(2);
        assert!(s.on_request(StreamId(1), "/a", SimTime::ZERO).is_some());
        assert!(s.on_request(StreamId(3), "/a", SimTime::ZERO).is_some());
        // Pool exhausted: later requests park in arrival order.
        assert!(s.on_request(StreamId(5), "/a", SimTime::ZERO).is_none());
        assert!(s.on_request(StreamId(7), "/a", SimTime::ZERO).is_none());
        assert_eq!(s.parked_len(), 2);
        assert_eq!(pool.borrow().in_use(), 2);
        assert_eq!(
            s.due_responses(SimTime::ZERO).len(),
            2,
            "only admitted serve"
        );
        // Finishing stream 1 admits the head of the queue (stream 5).
        let t = SimTime::from_millis(1);
        s.release_stream(StreamId(1), t);
        assert_eq!(s.parked_len(), 1);
        let admitted = s.due_responses(t);
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].stream, StreamId(5));
        let stats = pool.borrow().stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.parked, 2);
    }

    #[test]
    fn release_of_non_serving_stream_is_a_no_op() {
        let (mut s, pool) = pooled_server(1);
        assert!(s.on_request(StreamId(1), "/a", SimTime::ZERO).is_some());
        s.release_stream(StreamId(99), SimTime::ZERO);
        assert_eq!(pool.borrow().in_use(), 1);
        s.release_stream(StreamId(1), SimTime::ZERO);
        s.release_stream(StreamId(1), SimTime::ZERO);
        assert_eq!(pool.borrow().in_use(), 0);
    }

    #[test]
    fn reset_drops_parked_copy() {
        let (mut s, _pool) = pooled_server(1);
        assert!(s.on_request(StreamId(1), "/a", SimTime::ZERO).is_some());
        assert!(s.on_request(StreamId(3), "/a", SimTime::ZERO).is_none());
        s.on_stream_reset(StreamId(3));
        assert_eq!(s.parked_len(), 0);
        // Freeing the worker now admits nothing.
        s.release_stream(StreamId(1), SimTime::ZERO);
        assert!(s.due_responses(SimTime::from_secs(1)).len() <= 1);
    }

    #[test]
    fn settings_backlog_stalls_workers() {
        let (mut s, pool) = pooled_server(4);
        s.on_request(StreamId(1), "/a", SimTime::ZERO);
        // Ten SETTINGS at 10 ms each: control plane busy until t=100 ms.
        for _ in 0..10 {
            pool.borrow_mut().note_settings(SimTime::ZERO);
        }
        assert!(s.due_responses(SimTime::from_millis(50)).is_empty());
        assert_eq!(s.next_wakeup(), Some(SimTime::from_millis(100)));
        assert_eq!(s.due_responses(SimTime::from_millis(100)).len(), 1);
        assert_eq!(pool.borrow().stats().settings_processed, 10);
    }

    #[test]
    fn shutdown_returns_every_worker_and_drops_parked() {
        let (mut s, pool) = pooled_server(2);
        assert!(s.on_request(StreamId(1), "/a", SimTime::ZERO).is_some());
        assert!(s.on_request(StreamId(3), "/a", SimTime::ZERO).is_some());
        assert!(s.on_request(StreamId(5), "/a", SimTime::ZERO).is_none());
        s.shutdown();
        assert_eq!(pool.borrow().in_use(), 0, "teardown returns all workers");
        assert_eq!(s.parked_len(), 0);
        assert!(s.serving().is_empty());
        assert!(
            s.due_responses(SimTime::from_secs(1)).is_empty(),
            "no worker survives teardown"
        );
        // The freed capacity is immediately usable by a connection
        // sharing the pool.
        assert!(pool.borrow_mut().try_acquire());
    }

    #[test]
    fn parser_hold_overdraws_but_blocks_admission() {
        let mut pool = WorkerPool::new(PoolConfig {
            capacity: 1,
            ..PoolConfig::default()
        });
        pool.hold_parser();
        pool.hold_parser();
        assert_eq!(pool.parser_held(), 2, "holds overdraw freely");
        assert!(!pool.try_acquire(), "captured threads starve admission");
        pool.release_parser();
        pool.release_parser();
        assert!(pool.try_acquire());
    }
}
