//! The modeled target website (§V "Target Website").
//!
//! The paper's evaluation target is the `isidewith.com` survey-result page:
//! an HTML file of ≈ 9 500 bytes containing 47 embedded objects, among them
//! 8 political-party emblem images of 5–16 KB requested in the user's
//! preference order by a script, with the inter-request gaps of Table II.
//! This module builds a [`Website`] + [`BrowsePlan`] with exactly that
//! structure; the user's survey outcome is the permutation passed to
//! [`build`], and recovering it from encrypted traffic is the attack's
//! goal.

use h2priv_netsim::SimDuration;

use crate::object::{ObjectId, ObjectKind};
use crate::plan::{BrowsePlan, Phase, PlanStep, Trigger};
use crate::site::Website;

/// The eight modeled parties, by party index.
pub const PARTY_NAMES: [&str; 8] = [
    "democratic",
    "republican",
    "libertarian",
    "green",
    "constitution",
    "reform",
    "unity",
    "justice",
];

/// Emblem image sizes in bytes, by party index (paper: "size ranging
/// between 5KB to 16KB"; pairwise gaps ≥ 900 B keep sizes unique, the
/// property the attack needs).
pub const IMAGE_SIZES: [usize; 8] = [5_200, 6_800, 8_300, 10_400, 11_900, 13_300, 14_700, 15_900];

/// The result page HTML size (paper: "an HTML file of size ≈ 9500 bytes").
pub const HTML_SIZE: usize = 9_500;

/// Number of objects embedded in the result page (paper: "hyperlinks of 47
/// embedded objects").
pub const EMBEDDED_OBJECTS: usize = 47;

/// Inter-request gaps between consecutive emblem images, from Table II
/// (I₁→I₂ … I₇→I₈), in microseconds.
pub const IMAGE_GAPS_US: [u64; 7] = [400, 2_000, 300, 100, 300, 2_000, 500];

/// Gap between the last image request and the next trailing object
/// (Table II: 26 ms after I₈).
pub const POST_IMAGE_GAP: SimDuration = SimDuration::from_millis(26);

/// The constructed scenario.
#[derive(Debug, Clone)]
pub struct Isidewith {
    /// The website.
    pub site: Website,
    /// The browsing plan for one survey-result visit.
    pub plan: BrowsePlan,
    /// The user's preference order: `golden_order[rank] = party index`.
    /// This is what the adversary tries to recover.
    pub golden_order: Vec<usize>,
    /// The result HTML (the paper's first object of interest, the 6th GET).
    pub html: ObjectId,
    /// Emblem image ids, by party index.
    pub images: [ObjectId; 8],
    /// The script whose execution triggers the image burst.
    pub trigger_js: ObjectId,
}

/// Builds the site and plan for a user whose survey outcome is
/// `golden_order` (a permutation of `0..8`, most preferred first).
///
/// # Panics
///
/// Panics if `golden_order` is not a permutation of `0..8`.
pub fn build(golden_order: &[usize]) -> Isidewith {
    let mut check: Vec<usize> = golden_order.to_vec();
    check.sort_unstable();
    assert_eq!(
        check,
        (0..8).collect::<Vec<_>>(),
        "golden_order must be a permutation of 0..8"
    );

    let mut site = Website::new();
    let ms = SimDuration::from_millis;
    let us = SimDuration::from_micros;

    // ---- Phase A: the survey flow leading to the result page. The result
    // HTML is the 6th GET of the session, matching §IV ("the object of
    // interest ... is the 6th object downloaded by the client").
    // The survey pages' assets (the page being navigated away from): the
    // first four complete within their gaps; the fifth — requested 500 ms
    // before the result HTML per Table II — is large enough that its
    // transfer often still runs when the HTML is served, which is the
    // source of the paper's ≈ 98 % baseline degree for the HTML.
    let pre = [
        ("/app/survey.js", ObjectKind::JavaScript, 150_000, ms(0)),
        ("/app/styles.css", ObjectKind::StyleSheet, 86_000, ms(350)),
        ("/app/vendor.js", ObjectKind::JavaScript, 210_000, ms(300)),
        ("/fonts/main.woff2", ObjectKind::Font, 64_000, ms(400)),
        (
            "/app/results-preload.js",
            ObjectKind::JavaScript,
            880_000,
            ms(320),
        ),
    ];
    let mut phase_a = Vec::new();
    let mut phase_a_span = SimDuration::ZERO;
    for (path, kind, size, gap) in pre {
        let id = site.add(path, kind, size);
        phase_a_span += gap;
        phase_a.push(PlanStep { object: id, gap });
    }
    // The result-page navigation: the HTML is requested 500 ms after the
    // last survey-page request (Table II) but belongs to the *new* page,
    // so it lives in its own phase and is re-fetched after a reset.
    let html = site.add("/results/2020.html", ObjectKind::Html, HTML_SIZE);
    let html_phase = vec![PlanStep {
        object: html,
        gap: phase_a_span + ms(500),
    }];

    // ---- Phase B: first wave of embedded assets, parsed out of the HTML.
    // The banner is large and requested right after the style sheet, so
    // it is still streaming when the result script fires the image burst
    // — the in-flight traffic that gives the emblem images their high
    // baseline degree of multiplexing.
    let embedded = [
        (
            "/results/results.css",
            ObjectKind::StyleSheet,
            17_800,
            ms(0),
        ),
        ("/img/banner.jpg", ObjectKind::Image, 230_000, ms(30)),
        (
            "/results/results.js",
            ObjectKind::JavaScript,
            63_000,
            ms(130),
        ),
        ("/js/analytics.js", ObjectKind::JavaScript, 27_500, ms(120)),
        ("/img/logo.png", ObjectKind::Image, 21_300, ms(140)),
        ("/fonts/headline.woff2", ObjectKind::Font, 36_400, ms(110)),
        ("/js/share.js", ObjectKind::JavaScript, 18_900, ms(170)),
        ("/css/print.css", ObjectKind::StyleSheet, 4_100, ms(130)),
        ("/api/user.json", ObjectKind::Other, 1_800, ms(100)),
        ("/img/sprite.png", ObjectKind::Image, 47_000, ms(150)),
        ("/js/polyfill.js", ObjectKind::JavaScript, 24_600, ms(120)),
        ("/img/footer.jpg", ObjectKind::Image, 52_500, ms(180)),
    ];
    let mut phase_b = Vec::new();
    let mut trigger_js = html; // overwritten below
    for (path, kind, size, gap) in embedded {
        let id = site.add(path, kind, size);
        if path == "/results/results.js" {
            trigger_js = id;
        }
        phase_b.push(PlanStep { object: id, gap });
    }

    // ---- Emblem images (registered by party index).
    let mut images = [html; 8];
    for (party, name) in PARTY_NAMES.iter().enumerate() {
        images[party] = site.add(
            format!("/img/parties/{name}.png"),
            ObjectKind::Image,
            IMAGE_SIZES[party],
        );
    }

    // ---- Phase C: the script fires the 8 image requests in preference
    // order with Table II's micro-gaps, then the trailing assets.
    let mut phase_c = Vec::new();
    for (rank, &party) in golden_order.iter().enumerate() {
        let gap = if rank == 0 {
            SimDuration::ZERO
        } else {
            us(IMAGE_GAPS_US[rank - 1])
        };
        phase_c.push(PlanStep {
            object: images[party],
            gap,
        });
    }
    // Trailing embedded objects: 18 thumbnails + 9 small scripts = 27,
    // bringing the embedded total to 12 + 8 + 27 = 47.
    for i in 0..18usize {
        let id = site.add(
            format!("/img/thumbs/t{i}.jpg"),
            ObjectKind::Image,
            17_200 + i * 2_337,
        );
        phase_c.push(PlanStep {
            object: id,
            gap: if i == 0 { POST_IMAGE_GAP } else { ms(2) },
        });
    }
    for i in 0..9usize {
        let id = site.add(
            format!("/ads/a{i}.js"),
            ObjectKind::JavaScript,
            1_300 + i * 350,
        );
        phase_c.push(PlanStep {
            object: id,
            gap: ms(2),
        });
    }

    let plan = BrowsePlan::new()
        .with_phase(Phase {
            trigger: Trigger::Start,
            delay: SimDuration::ZERO,
            steps: phase_a,
            // Old-page resources: abandoned after a reset, never re-fetched
            // (the user has navigated to the result page).
            reissue: false,
        })
        .with_phase(Phase {
            trigger: Trigger::Start,
            delay: SimDuration::ZERO,
            steps: html_phase,
            reissue: true,
        })
        .with_phase(Phase {
            trigger: Trigger::AfterComplete(html),
            delay: ms(30),
            steps: phase_b,
            reissue: true,
        })
        .with_phase(Phase {
            trigger: Trigger::AfterComplete(trigger_js),
            delay: ms(25),
            steps: phase_c,
            reissue: true,
        });

    Isidewith {
        site,
        plan,
        golden_order: golden_order.to_vec(),
        html,
        images,
        trigger_js,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity() -> Vec<usize> {
        (0..8).collect()
    }

    #[test]
    fn structure_matches_paper() {
        let iw = build(&identity());
        // 5 pre-objects + HTML + 47 embedded.
        assert_eq!(iw.site.len(), 5 + 1 + EMBEDDED_OBJECTS);
        assert_eq!(iw.plan.request_count(), 5 + 1 + EMBEDDED_OBJECTS);
        // The HTML is the 6th GET (index 5) and is 9 500 bytes.
        assert_eq!(iw.plan.request_index(iw.html), Some(5));
        assert_eq!(iw.site.object(iw.html).unwrap().size, 9_500);
        // Survey-page resources are abandoned after a reset; the result
        // page's are re-fetched.
        assert!(!iw.plan.phases[0].reissue);
        assert!(iw.plan.phases[1].reissue);
    }

    #[test]
    fn image_sizes_in_paper_range_and_unique() {
        for (i, &a) in IMAGE_SIZES.iter().enumerate() {
            assert!((5_000..=16_000).contains(&a));
            for &b in &IMAGE_SIZES[i + 1..] {
                assert!(a.abs_diff(b) >= 900, "{a} vs {b}");
            }
            // Distinct from the HTML too.
            assert!(a.abs_diff(HTML_SIZE) >= 900);
        }
    }

    #[test]
    fn non_emblem_sizes_avoid_emblem_band() {
        // Every non-emblem object must sit ≥ 800 B from every emblem size,
        // otherwise the paper's size-map attack would be ambiguous even in
        // principle.
        let iw = build(&identity());
        for obj in iw.site.objects() {
            if iw.images.contains(&obj.id) {
                continue;
            }
            for &img in &IMAGE_SIZES {
                assert!(
                    obj.size.abs_diff(img) >= 800,
                    "{} ({} B) collides with an emblem ({img} B)",
                    obj.path,
                    obj.size
                );
            }
        }
    }

    #[test]
    fn images_requested_in_golden_order() {
        let order = vec![3, 1, 4, 0, 7, 2, 6, 5];
        let iw = build(&order);
        let phase_c = &iw.plan.phases[3];
        let requested: Vec<ObjectId> = phase_c.steps[..8].iter().map(|s| s.object).collect();
        let expected: Vec<ObjectId> = order.iter().map(|&p| iw.images[p]).collect();
        assert_eq!(requested, expected);
    }

    #[test]
    fn image_gaps_match_table_ii() {
        let iw = build(&identity());
        let phase_c = &iw.plan.phases[3];
        assert_eq!(phase_c.steps[1].gap, SimDuration::from_micros(400));
        assert_eq!(phase_c.steps[2].gap, SimDuration::from_millis(2));
        assert_eq!(phase_c.steps[4].gap, SimDuration::from_micros(100));
        assert_eq!(phase_c.steps[8].gap, POST_IMAGE_GAP);
    }

    #[test]
    fn phases_are_gated_on_html_and_trigger_js() {
        let iw = build(&identity());
        assert_eq!(iw.plan.phases[2].trigger, Trigger::AfterComplete(iw.html));
        assert_eq!(
            iw.plan.phases[3].trigger,
            Trigger::AfterComplete(iw.trigger_js)
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_panics() {
        build(&[0, 0, 1, 2, 3, 4, 5, 6]);
    }
}
