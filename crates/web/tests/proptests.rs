//! Property-based tests of the web model: schedule invariants of the
//! browser under arbitrary plans, and isidewith structural guarantees for
//! every survey outcome.
//!
//! Gated behind the `proptests` feature: the external `proptest` crate is
//! unavailable in offline builds. Re-add the dev-dependency and enable the
//! feature to run these.
#![cfg(feature = "proptests")]

use h2priv_http2::StreamId;
use h2priv_netsim::{SimDuration, SimRng, SimTime};
use h2priv_web::{
    isidewith, BrowsePlan, Browser, BrowserCmd, BrowserConfig, ObjectId, ObjectKind, Phase,
    PlanStep, Trigger, Website,
};
use proptest::prelude::*;

fn arb_permutation() -> impl Strategy<Value = Vec<usize>> {
    any::<u64>().prop_map(|seed| SimRng::seed_from(seed).permutation(8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The isidewith scenario holds its paper-pinned structure for every
    /// possible survey outcome.
    #[test]
    fn isidewith_structure_for_any_outcome(order in arb_permutation()) {
        let iw = isidewith::build(&order);
        prop_assert_eq!(iw.site.len(), 53);
        prop_assert_eq!(iw.plan.request_count(), 53);
        prop_assert_eq!(iw.plan.request_index(iw.html), Some(5));
        // The images are requested exactly in the golden order.
        let phase_c = &iw.plan.phases[3];
        let requested: Vec<ObjectId> = phase_c.steps[..8].iter().map(|s| s.object).collect();
        let expected: Vec<ObjectId> = order.iter().map(|&p| iw.images[p]).collect();
        prop_assert_eq!(requested, expected);
        // Every image size is unique and in the paper's 5–16 KB band.
        for (i, &img) in iw.images.iter().enumerate() {
            let size = iw.site.object(img).unwrap().size;
            prop_assert!((5_000..=16_000).contains(&size));
            for &other in &iw.images[i + 1..] {
                prop_assert_ne!(size, iw.site.object(other).unwrap().size);
            }
        }
    }

    /// Browser schedule: without noise, requests of a Start phase are
    /// issued in order with exactly the planned cumulative gaps.
    #[test]
    fn browser_issues_planned_schedule(
        gaps_ms in proptest::collection::vec(0u64..500, 1..12),
    ) {
        let mut site = Website::new();
        let mut steps = Vec::new();
        for (i, &gap) in gaps_ms.iter().enumerate() {
            let id = site.add(format!("/o{i}"), ObjectKind::Other, 100);
            steps.push(PlanStep {
                object: id,
                gap: SimDuration::from_millis(gap),
            });
        }
        let plan = BrowsePlan::new().with_phase(Phase {
            trigger: Trigger::Start,
            delay: SimDuration::ZERO,
            steps,
            reissue: true,
        });
        let config = BrowserConfig {
            // The fixture never completes responses; stalls must not fire.
            stall_timeout: SimDuration::from_secs(10_000),
            ..BrowserConfig::default()
        };
        let mut browser = Browser::new(&site, plan, config, SimRng::seed_from(1));
        browser.start(SimTime::ZERO);
        // Walk wakeups until all requests are issued.
        let mut issued: Vec<(SimTime, ObjectId)> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut next_stream = 1u32;
        for _ in 0..100 {
            for cmd in browser.poll_cmds(now) {
                if let BrowserCmd::SendRequest { req, object, .. } = cmd {
                    issued.push((now, object));
                    browser.note_stream(req, StreamId(next_stream));
                    next_stream += 2;
                }
            }
            match browser.next_wakeup() {
                Some(t) if issued.len() < gaps_ms.len() => now = t.max(now),
                _ => break,
            }
        }
        prop_assert_eq!(issued.len(), gaps_ms.len());
        let mut expected = SimTime::ZERO;
        for (k, &gap) in gaps_ms.iter().enumerate() {
            expected += SimDuration::from_millis(gap);
            prop_assert_eq!(issued[k].0, expected, "request {}", k);
        }
    }

    /// Outcome accounting: bytes reported per request equal bytes fed in,
    /// and completion is monotone with respect to END_STREAM.
    #[test]
    fn browser_accounts_bytes(
        chunks in proptest::collection::vec(1usize..5_000, 1..10),
    ) {
        let total: usize = chunks.iter().sum();
        let mut site = Website::new();
        let id = site.add("/x", ObjectKind::Other, total);
        let plan = BrowsePlan::new().with_phase(Phase {
            trigger: Trigger::Start,
            delay: SimDuration::ZERO,
            steps: vec![PlanStep { object: id, gap: SimDuration::ZERO }],
            reissue: true,
        });
        let mut browser = Browser::new(&site, plan, BrowserConfig::default(), SimRng::seed_from(1));
        browser.start(SimTime::ZERO);
        let cmds = browser.poll_cmds(SimTime::ZERO);
        let req = match &cmds[0] {
            BrowserCmd::SendRequest { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        browser.note_stream(req, StreamId(1));
        for (t, (i, &c)) in (1u64..).zip(chunks.iter().enumerate()) {
            let last = i == chunks.len() - 1;
            browser.on_data(StreamId(1), c, last, SimTime::from_millis(t));
            if !last {
                prop_assert!(!browser.is_done());
            }
        }
        prop_assert!(browser.is_done());
        let outcome = &browser.outcomes()[0];
        prop_assert_eq!(outcome.bytes as usize, total);
        prop_assert!(!outcome.failed);
    }
}
