//! Worker-cancellation pins: no pool thread survives its connection.
//!
//! The server releases every in-flight worker (and any captured parser
//! thread) on both teardown paths — a guard-ordered GOAWAY and a
//! transport-level death. A leaked worker is a permanent capacity loss
//! for every other connection sharing the pool, so both paths are pinned
//! here.

use h2priv_core::experiment::run_paper_trial;
use h2priv_core::AttackConfig;
use h2priv_dos::{DetectorConfig, DosAttack, DosConfig, GuardConfig};
use h2priv_netsim::SimDuration;
use h2priv_testkit::{run_dos_trial, DosScenarioConfig};
use h2priv_web::PoolConfig;

#[test]
fn transport_death_releases_every_worker() {
    // An unbounded total-drop window (the §IV-D "broken connection"
    // regime: 100 % drops that don't stop at the client's reset) kills
    // the TCP connection by retransmission timeout while response
    // streams are still mid-flight — their workers are held when the
    // transport dies underneath them. The teardown must hand every
    // worker back.
    let mut attack = AttackConfig::paper_attack();
    attack.drop_rate_per_mille = 1000;
    attack.drop_duration = SimDuration::from_secs(30);
    attack.stop_drops_on_reset_get = false;
    for seed in 0..3u64 {
        let trial = run_paper_trial(seed, Some(&attack), |cfg| {
            cfg.pool = Some(PoolConfig::default());
        });
        assert!(
            trial.result.broken,
            "seed {seed}: the total drop window breaks the connection"
        );
        assert!(
            trial
                .result
                .outcomes
                .iter()
                .any(|o| o.completed_at.is_none()),
            "seed {seed}: some stream must die mid-flight for the pin to bite"
        );
        assert_eq!(
            trial.result.pool_in_use, 0,
            "seed {seed}: transport death leaked pool workers"
        );
    }
}

#[test]
fn pooled_benign_run_completes_and_ends_drained() {
    // An honest page load against a pooled server: the pool is wide
    // enough that nothing parks, every request completes, and every
    // worker is back home at the end.
    let pooled = run_paper_trial(1, None, |cfg| {
        cfg.pool = Some(PoolConfig::default());
    });
    assert!(pooled
        .result
        .outcomes
        .iter()
        .all(|o| o.completed_at.is_some()));
    assert_eq!(pooled.result.pool_in_use, 0);
}

#[test]
fn guard_goaway_releases_every_worker() {
    // Guard-ordered GOAWAY against the worst hoarder: all held workers
    // and parser threads return to the pool. (`run_dos_trial` reports the
    // pool's end-state occupancy directly.)
    for attack in [DosAttack::ZeroWindowHoard, DosAttack::SlowHeaders] {
        let r = run_dos_trial(&DosScenarioConfig {
            seed: 5,
            attack: DosConfig::for_attack(attack),
            guard: Some(GuardConfig::default()),
            detector: Some(DetectorConfig::default()),
            pool: Some(PoolConfig::default()),
            ..DosScenarioConfig::default()
        });
        assert!(r.shed_at.is_some(), "{}: guard sheds", attack.name());
        assert_eq!(
            (r.pool_in_use, r.parser_held),
            (0, 0),
            "{}: GOAWAY teardown leaked pool threads",
            attack.name()
        );
    }
}
