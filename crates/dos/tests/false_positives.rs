//! False-positive pins: the monitoring stack armed on honest traffic.
//!
//! The guard and detector only earn their place if benign runs — every
//! condition the paper's exhibits measure, including the §V serialization
//! attack on an *honest* client — stay alert-free, kill-free, and
//! schedule-identical to unmonitored runs. These tests pin all three.

use h2priv_core::experiment::run_paper_trial;
use h2priv_core::AttackConfig;
use h2priv_defense::DefenseSpec;
use h2priv_dos::{DetectorConfig, DosAttack, GuardConfig, GuardStats};
use h2priv_netsim::{mbps, SimDuration};
use h2priv_testkit::fleet::{run_fleet, FleetConfig, FleetConformance};
use h2priv_testkit::{FleetDosConfig, RunResult, ScenarioConfig};
use h2priv_web::PoolConfig;

fn arm(cfg: &mut ScenarioConfig) {
    cfg.dos_guard = Some(GuardConfig::default());
    cfg.dos_detector = Some(DetectorConfig::default());
}

fn guard_kills(stats: GuardStats) -> u64 {
    stats.header_timeouts + stats.progress_kills + stats.settings_floods + stats.hoard_closes
}

fn assert_silent(result: &RunResult, label: &str) {
    assert!(
        result.dos_alerts.is_empty(),
        "{label}: detector alerted on honest traffic: {:?}",
        result.dos_alerts
    );
    let kills = result.guard.map(guard_kills).unwrap_or(0);
    assert_eq!(kills, 0, "{label}: guard shed honest traffic");
}

/// The benign adversary grid of the paper's exhibits: network-level
/// disturbances against an honest client. None of them may look like a
/// hostile client to the DoS monitor.
fn benign_grid() -> [(&'static str, Option<AttackConfig>); 4] {
    [
        ("baseline", None),
        (
            "jitter",
            Some(AttackConfig::jitter_only(SimDuration::from_millis(80))),
        ),
        (
            "jitter+throttle",
            Some(AttackConfig::jitter_and_throttle(
                SimDuration::from_millis(80),
                mbps(800),
            )),
        ),
        ("full-sv-attack", Some(AttackConfig::paper_attack())),
    ]
}

#[test]
fn monitored_benign_runs_raise_no_alerts_and_change_nothing() {
    for (label, attack) in benign_grid() {
        for seed in 0..3u64 {
            let bare = run_paper_trial(seed, attack.as_ref(), |_| {});
            let armed = run_paper_trial(seed, attack.as_ref(), arm);
            assert_silent(&armed.result, label);
            // The monitoring stack only observes: every request outcome —
            // and the whole event schedule — must match the unmonitored
            // run exactly.
            assert_eq!(
                armed.result.events, bare.result.events,
                "{label}/{seed}: monitoring changed the event schedule"
            );
            let completions =
                |r: &RunResult| -> Vec<_> { r.outcomes.iter().map(|o| o.completed_at).collect() };
            assert_eq!(
                completions(&armed.result),
                completions(&bare.result),
                "{label}/{seed}: monitoring changed request outcomes"
            );
        }
    }
}

#[test]
fn monitored_defended_runs_raise_no_alerts() {
    // Countermeasure deployments reshape the wire (padding, dummy
    // records, pacing holds) — none of it may read as a slow-rate attack.
    for defense in DefenseSpec::arena() {
        let trial = run_paper_trial(3, None, |cfg| {
            cfg.defense = defense;
            arm(cfg);
        });
        assert_silent(&trial.result, defense.name());
        assert!(
            trial
                .result
                .outcomes
                .iter()
                .all(|o| o.completed_at.is_some()),
            "{}: defended page must still complete",
            defense.name()
        );
    }
}

#[test]
fn benign_fleet_with_monitoring_stays_silent_and_completes() {
    // A worker pool, guard and detector on every server, zero hostile
    // pairs: the population is the fleet-scale false-positive corpus.
    let config = FleetConfig {
        seed: 0x00FA_15E0,
        population: 12,
        shards: 2,
        conformance: FleetConformance::Full,
        start_spread: SimDuration::from_millis(200),
        deadline: SimDuration::from_secs(40),
        dos: Some(FleetDosConfig {
            attack: DosAttack::ZeroWindowHoard,
            attackers: 0,
            guard: Some(GuardConfig::default()),
            detector: Some(DetectorConfig::default()),
            pool: Some(PoolConfig::default()),
        }),
        ..FleetConfig::default()
    };
    let r = run_fleet(&config, || None);
    assert_eq!(r.attackers, 0);
    assert_eq!(r.benign_alerts, 0, "fleet detector alerted on honest pairs");
    assert_eq!(
        r.completed, config.population,
        "every honest pair completes under monitoring"
    );
    assert_eq!(r.violations_total, 0, "{:?}", r.violations);
}
