//! `ServerGuard`: per-connection resource hardening against slow-rate DoS.
//!
//! The guard watches one server-side [`H2Connection`] through its public
//! inspectors — no protocol hooks, no wire taps — and converts resource
//! starvation into deterministic shedding decisions:
//!
//! * **Header timeout** — a HEADERS/CONTINUATION sequence still open after
//!   `header_timeout` closes the connection (the sequence blocks every
//!   other frame, so a stream-level reset cannot help).
//! * **Progress-rate enforcement** — a stream with queued response bytes
//!   *and no usable flow-control credit* must drain at least
//!   `min_progress_bytes` per `progress_interval` or it is reset with
//!   `ENHANCE_YOUR_CALM`. This is the defense the slow-read literature
//!   calls *minimum data rate*: idle timeouts alone are defeated by
//!   one-byte WINDOW_UPDATE drips. The credit gate keeps the blame on the
//!   peer — a stream stalled by network loss still holds credit and is
//!   never shed, so victims of the paper's own §V gateway adversary don't
//!   get punished twice.
//! * **SETTINGS rate limit** — more than `max_settings_per_window` non-ACK
//!   SETTINGS inside `settings_window` closes the connection.
//! * **Zero-window hoard detection** — a peer that advertised a zero
//!   initial window while holding `hoard_streams` or more open streams for
//!   `hoard_timeout` closes the connection. This connection-level rule
//!   catches hoarders even when a starved worker pool means no stream ever
//!   has queued bytes for the progress rule to judge.
//!
//! The host applies the returned [`GuardAction`]s (RST_STREAM / GOAWAY,
//! plus worker-pool release); the guard itself never touches the
//! connection. All thresholds are far outside honest-client behavior under
//! the calibrated network model, so guarded benign runs complete exactly
//! as unguarded ones do — the false-positive suite in `tests/` pins this.

use h2priv_http2::{H2Connection, StreamId};
use h2priv_netsim::{SimDuration, SimTime};

/// Guard thresholds. Defaults are generous: an honest client over the
/// calibrated WAN never leaves a header sequence open at all, never drips
/// sub-kilobyte credit, and sends exactly one SETTINGS frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Longest a HEADERS/CONTINUATION sequence may stay open.
    pub header_timeout: SimDuration,
    /// Window over which response-drain progress is measured.
    pub progress_interval: SimDuration,
    /// Minimum queued-response bytes that must drain per interval.
    pub min_progress_bytes: usize,
    /// Window for the SETTINGS rate limit.
    pub settings_window: SimDuration,
    /// Non-ACK SETTINGS frames allowed per window.
    pub max_settings_per_window: u64,
    /// Open remote streams that count as hoarding when the peer
    /// advertised a zero initial window.
    pub hoard_streams: usize,
    /// How long hoarding may persist before the connection closes.
    pub hoard_timeout: SimDuration,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            header_timeout: SimDuration::from_secs(2),
            progress_interval: SimDuration::from_secs(2),
            min_progress_bytes: 1024,
            settings_window: SimDuration::from_secs(1),
            max_settings_per_window: 20,
            hoard_streams: 16,
            hoard_timeout: SimDuration::from_secs(2),
        }
    }
}

/// A shedding decision for the host to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardAction {
    /// Reset one stream with `ENHANCE_YOUR_CALM` and release its worker.
    ResetStream(StreamId),
    /// Send GOAWAY(`ENHANCE_YOUR_CALM`) and drop the connection.
    CloseConnection,
}

/// Shedding counters, reported by the `dos` exhibit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Connections closed for an overdue header sequence.
    pub header_timeouts: u64,
    /// Streams reset for insufficient drain progress.
    pub progress_kills: u64,
    /// Connections closed for SETTINGS flooding.
    pub settings_floods: u64,
    /// Connections closed for zero-window stream hoarding.
    pub hoard_closes: u64,
}

/// Drain-progress bookkeeping for one suspect stream.
#[derive(Debug, Clone, Copy)]
struct StallMark {
    stream: StreamId,
    /// Queued bytes when the mark was taken.
    pending_at_mark: usize,
    mark: SimTime,
}

/// Per-connection guard state. One instance per server-side connection.
#[derive(Debug)]
pub struct ServerGuard {
    config: GuardConfig,
    /// Open header sequence being timed, if any.
    header_seq: Option<(StreamId, SimTime)>,
    stalled: Vec<StallMark>,
    /// SETTINGS count at the start of the current rate window.
    settings_mark: (u64, SimTime),
    /// When zero-window stream hoarding was first observed, if ongoing.
    hoard_since: Option<SimTime>,
    closed: bool,
    stats: GuardStats,
}

impl ServerGuard {
    /// Creates a guard with the given thresholds.
    pub fn new(config: GuardConfig) -> Self {
        ServerGuard {
            config,
            header_seq: None,
            stalled: Vec::new(),
            settings_mark: (0, SimTime::ZERO),
            hoard_since: None,
            closed: false,
            stats: GuardStats::default(),
        }
    }

    /// Shedding counters.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// True once the guard has ordered the connection closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Inspects the connection and appends any shedding decisions to
    /// `actions`. The host calls this after every pump and at every
    /// [`next_wakeup`](Self::next_wakeup) deadline.
    pub fn scan(&mut self, h2: &H2Connection, now: SimTime, actions: &mut Vec<GuardAction>) {
        if self.closed {
            return;
        }

        // 1. Header-sequence age. The decoder exposes the stream of any
        // sequence still being reassembled; an honest client completes its
        // block in one frame, so any persistently open sequence is hostile.
        match h2.in_progress_header_stream() {
            Some(stream) => match self.header_seq {
                Some((seq_stream, since)) if seq_stream == stream => {
                    if now.saturating_since(since) >= self.config.header_timeout {
                        self.stats.header_timeouts += 1;
                        self.closed = true;
                        actions.push(GuardAction::CloseConnection);
                        return;
                    }
                }
                _ => self.header_seq = Some((stream, now)),
            },
            None => self.header_seq = None,
        }

        // 2. SETTINGS rate. The connection counts non-ACK SETTINGS; the
        // guard windows the counter.
        let settings = h2.stats().settings_received;
        let (mark_count, mark_at) = self.settings_mark;
        if now.saturating_since(mark_at) >= self.config.settings_window {
            self.settings_mark = (settings, now);
        } else if settings - mark_count > self.config.max_settings_per_window {
            self.stats.settings_floods += 1;
            self.closed = true;
            actions.push(GuardAction::CloseConnection);
            return;
        }

        // 3. Zero-window stream hoarding. A client that advertised a zero
        // initial window and holds many open streams consumes stream and
        // worker capacity while guaranteeing no response can ever drain —
        // so the per-stream progress rule below may never even see queued
        // bytes (a starved worker pool produces none). Judge the
        // connection as a whole.
        let hoarding = h2.peer_settings().initial_window_size == 0
            && h2.open_remote_streams() >= self.config.hoard_streams;
        if hoarding {
            let since = *self.hoard_since.get_or_insert(now);
            if now.saturating_since(since) >= self.config.hoard_timeout {
                self.stats.hoard_closes += 1;
                self.closed = true;
                actions.push(GuardAction::CloseConnection);
                return;
            }
        } else {
            self.hoard_since = None;
        }

        // 4. Drain progress. A stream with queued response bytes must
        // shrink its queue by min_progress_bytes per interval. In this
        // server model pending bytes only ever decrease (the whole body is
        // queued at once), so "drained" is pending_at_mark - pending_now.
        //
        // Only streams the *peer* is starving count: a stream that still
        // holds real flow-control credit but isn't draining is stalled on
        // the network or the transport, and resetting it would punish
        // honest clients behind lossy or actively-disrupted paths (the
        // paper's §V adversary stalls victim flows in exactly that way).
        // The slow-read signature is pending data against near-zero
        // credit — the client withholds the window on purpose.
        let suspects = h2.streams_with_pending_data();
        self.stalled.retain(|m| suspects.contains(&m.stream));
        for stream in suspects {
            if h2.stream_send_available(stream) >= self.config.min_progress_bytes {
                self.stalled.retain(|m| m.stream != stream);
                continue;
            }
            let pending = h2.pending_data(stream);
            match self.stalled.iter_mut().find(|m| m.stream == stream) {
                None => self.stalled.push(StallMark {
                    stream,
                    pending_at_mark: pending,
                    mark: now,
                }),
                Some(m) => {
                    let drained = m.pending_at_mark.saturating_sub(pending);
                    if drained >= self.config.min_progress_bytes {
                        m.pending_at_mark = pending;
                        m.mark = now;
                    } else if now.saturating_since(m.mark) >= self.config.progress_interval {
                        self.stats.progress_kills += 1;
                        actions.push(GuardAction::ResetStream(stream));
                        // The reset clears the queue; forget the mark so a
                        // reused id starts fresh.
                        m.pending_at_mark = 0;
                        m.mark = now;
                    }
                }
            }
        }
        self.stalled
            .retain(|m| !(m.pending_at_mark == 0 && h2.pending_data(m.stream) == 0));
    }

    /// Earliest time a pending suspicion can ripen into a timeout. `None`
    /// while nothing is suspect — the guard then costs no wakeups at all,
    /// which is what keeps guarded benign runs schedule-identical.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        if self.closed {
            return None;
        }
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            next = Some(next.map_or(t, |n: SimTime| n.min(t)));
        };
        if let Some((_, since)) = self.header_seq {
            consider(since + self.config.header_timeout);
        }
        if let Some(since) = self.hoard_since {
            consider(since + self.config.hoard_timeout);
        }
        for m in &self.stalled {
            consider(m.mark + self.config.progress_interval);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_http2::{
        encode_frame, encode_headers_split, hpack, Frame, H2Config, HeaderField, Settings,
        CLIENT_PREFACE,
    };

    /// Server connection with the client handshake already consumed.
    fn server() -> H2Connection {
        let mut h2 = H2Connection::new_server(H2Config::default());
        let mut bytes = CLIENT_PREFACE.to_vec();
        bytes.extend_from_slice(&encode_frame(&Frame::Settings {
            ack: false,
            settings: Settings::default().to_wire(),
        }));
        h2.recv(&bytes).expect("handshake");
        h2
    }

    fn get_request(h2: &mut H2Connection, stream: u32, enc: &mut hpack::Encoder) {
        let block = enc.encode(&[
            HeaderField::new(":method", "GET"),
            HeaderField::new(":scheme", "https"),
            HeaderField::new(":authority", "a"),
            HeaderField::new(":path", "/"),
        ]);
        let bytes = encode_headers_split(h2priv_http2::StreamId(stream), true, &block, 16384);
        h2.recv(&bytes).expect("headers");
    }

    #[test]
    fn quiet_connection_never_wakes_or_acts() {
        let h2 = server();
        let mut g = ServerGuard::new(GuardConfig::default());
        let mut actions = Vec::new();
        g.scan(&h2, SimTime::from_secs(1), &mut actions);
        assert!(actions.is_empty());
        assert_eq!(g.next_wakeup(), None);
    }

    #[test]
    fn open_header_sequence_times_out() {
        let mut h2 = server();
        // HEADERS without END_HEADERS: length 1, type 0x1, flags 0,
        // stream 1, one block byte.
        let raw = [0u8, 0, 1, 0x1, 0, 0, 0, 0, 1, 0x82];
        h2.recv(&raw).expect("open sequence");
        assert!(h2.in_progress_header_stream().is_some());

        let mut g = ServerGuard::new(GuardConfig::default());
        let mut actions = Vec::new();
        let t0 = SimTime::from_secs(1);
        g.scan(&h2, t0, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(
            g.next_wakeup(),
            Some(t0 + GuardConfig::default().header_timeout)
        );
        g.scan(&h2, t0 + SimDuration::from_secs(2), &mut actions);
        assert_eq!(actions, vec![GuardAction::CloseConnection]);
        assert!(g.is_closed());
        assert_eq!(g.stats().header_timeouts, 1);
    }

    #[test]
    fn settings_flood_closes_the_connection() {
        let mut h2 = server();
        let flood = encode_frame(&Frame::Settings {
            ack: false,
            settings: vec![],
        });
        let mut g = ServerGuard::new(GuardConfig::default());
        let mut actions = Vec::new();
        g.scan(&h2, SimTime::ZERO, &mut actions);
        for _ in 0..21 {
            h2.recv(&flood).expect("settings");
        }
        g.scan(&h2, SimTime::from_millis(500), &mut actions);
        assert_eq!(actions, vec![GuardAction::CloseConnection]);
        assert_eq!(g.stats().settings_floods, 1);
    }

    #[test]
    fn settings_spread_across_windows_are_tolerated() {
        let mut h2 = server();
        let flood = encode_frame(&Frame::Settings {
            ack: false,
            settings: vec![],
        });
        let mut g = ServerGuard::new(GuardConfig::default());
        let mut actions = Vec::new();
        for window in 0..5u64 {
            for _ in 0..10 {
                h2.recv(&flood).expect("settings");
            }
            g.scan(&h2, SimTime::from_secs(window), &mut actions);
        }
        assert!(actions.is_empty(), "10/s is under the 20/s limit");
    }

    #[test]
    fn zero_window_hoard_closes_and_a_normal_window_does_not() {
        // Hostile handshake: SETTINGS_INITIAL_WINDOW_SIZE = 0.
        let mut h2 = H2Connection::new_server(H2Config::default());
        let mut bytes = CLIENT_PREFACE.to_vec();
        let hostile = Settings {
            initial_window_size: 0,
            ..Settings::default()
        };
        bytes.extend_from_slice(&encode_frame(&Frame::Settings {
            ack: false,
            settings: hostile.to_wire(),
        }));
        h2.recv(&bytes).expect("handshake");
        let mut enc = hpack::Encoder::new();
        for i in 0..GuardConfig::default().hoard_streams as u32 {
            get_request(&mut h2, 2 * i + 1, &mut enc);
        }

        let mut g = ServerGuard::new(GuardConfig::default());
        let mut actions = Vec::new();
        let t0 = SimTime::from_secs(1);
        g.scan(&h2, t0, &mut actions);
        assert!(actions.is_empty(), "first sight only marks");
        assert_eq!(
            g.next_wakeup(),
            Some(t0 + GuardConfig::default().hoard_timeout)
        );
        g.scan(&h2, t0 + GuardConfig::default().hoard_timeout, &mut actions);
        assert_eq!(actions, vec![GuardAction::CloseConnection]);
        assert!(g.is_closed());
        assert_eq!(g.stats().hoard_closes, 1);

        // The same stream count behind an honest window never marks.
        let mut h2 = server();
        let mut enc = hpack::Encoder::new();
        for i in 0..GuardConfig::default().hoard_streams as u32 {
            get_request(&mut h2, 2 * i + 1, &mut enc);
        }
        let mut g = ServerGuard::new(GuardConfig::default());
        let mut actions = Vec::new();
        g.scan(&h2, t0, &mut actions);
        g.scan(&h2, t0 + SimDuration::from_secs(10), &mut actions);
        assert!(actions.is_empty(), "honest windows are never hoarding");
        assert_eq!(g.stats().hoard_closes, 0);
    }

    #[test]
    fn stalled_response_is_reset_and_a_draining_one_is_not() {
        let mut h2 = server();
        let mut enc = hpack::Encoder::new();
        get_request(&mut h2, 1, &mut enc);
        let sid = h2priv_http2::StreamId(1);
        h2.send_headers(sid, &[HeaderField::new(":status", "200")], false)
            .expect("response headers");
        h2.send_data(sid, &vec![0u8; 100_000], true)
            .expect("queue body");

        let interval = GuardConfig::default().progress_interval;
        let mut g = ServerGuard::new(GuardConfig::default());
        let mut actions = Vec::new();
        let t0 = SimTime::from_secs(1);
        g.scan(&h2, t0, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(
            g.next_wakeup(),
            None,
            "a stream with credit to burn is the network's problem, not the peer's"
        );
        // Exhaust the peer's default 64 KiB of credit: pending data
        // against an empty window is the slow-read signature, and the
        // first sight marks.
        while h2.poll_send().is_some() {}
        g.scan(&h2, t0, &mut actions);
        assert!(actions.is_empty(), "first sight only marks");
        assert_eq!(g.next_wakeup(), Some(t0 + interval));
        // A real credit grant (stream and connection level, as an honest
        // client sends them) clears the suspicion entirely.
        let mut credit = encode_frame(&Frame::WindowUpdate {
            stream_id: sid,
            increment: 8192,
        });
        credit.extend_from_slice(&encode_frame(&Frame::WindowUpdate {
            stream_id: h2priv_http2::StreamId(0),
            increment: 8192,
        }));
        h2.recv(&credit).expect("credit");
        g.scan(&h2, t0 + SimDuration::from_millis(500), &mut actions);
        assert!(actions.is_empty());
        assert_eq!(g.next_wakeup(), None, "a credited stream is healthy again");
        // Drain that credit too and stall for a full interval: reset.
        while h2.poll_send().is_some() {}
        let t1 = t0 + SimDuration::from_secs(1);
        g.scan(&h2, t1, &mut actions);
        assert!(actions.is_empty(), "the stall clock restarts at re-mark");
        g.scan(&h2, t1 + interval, &mut actions);
        assert_eq!(actions, vec![GuardAction::ResetStream(sid)]);
        assert_eq!(g.stats().progress_kills, 1);
        assert!(!g.is_closed(), "stream kills keep the connection up");
    }
}
