//! Slow-rate HTTP/2 denial-of-service: attack workloads, server
//! hardening, and online detection.
//!
//! HTTP/2's stateful framing gives a low-bandwidth attacker three levers a
//! plain HTTP/1.1 server never exposed: an unfinished HEADERS/CONTINUATION
//! sequence freezes the whole connection, per-stream flow control lets a
//! receiver hold a response hostage one byte at a time, and every SETTINGS
//! frame obliges the server to do work and answer. Tripathi
//! (arXiv:2203.16796) showed the major implementations all fell to these
//! slow-rate workloads. This crate reproduces the triad inside the
//! deterministic simulation:
//!
//! * [`attack`] — [`DosClient`], a sans-IO malicious client mounting the
//!   four workloads ([`DosAttack`]) with RFC-legal frames only.
//! * [`guard`] — [`ServerGuard`], per-connection resource hardening:
//!   header-sequence timeouts, minimum-progress enforcement, and SETTINGS
//!   rate limits, shed via `ENHANCE_YOUR_CALM`.
//! * [`detector`] — [`DosDetector`], an online event-sequence detector at
//!   the TLS-terminating edge with structural (zero-false-positive)
//!   signatures.
//!
//! The `h2priv-testkit` crate mounts all three inside simulated hosts and
//! fleets; the `repro dos` exhibit reports starvation, shedding, and
//! detection-latency numbers.

#![warn(missing_docs)]

pub mod attack;
pub mod detector;
pub mod guard;

pub use attack::{DosAttack, DosClient, DosClientStats, DosConfig};
pub use detector::{Alert, AlertKind, DetectorConfig, DosDetector};
pub use guard::{GuardAction, GuardConfig, GuardStats, ServerGuard};
