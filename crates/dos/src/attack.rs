//! Slow-rate HTTP/2 DoS attack clients (Tripathi, arXiv:2203.16796).
//!
//! [`DosClient`] is a sans-IO *malicious* HTTP/2 client: it speaks raw
//! frame bytes (no [`h2priv_http2::H2Connection`]) so it can do what a
//! conforming stack never would — dribble one CONTINUATION byte per RTO,
//! advertise a zero-byte stream window and hold responses hostage, or
//! flood SETTINGS frames — while staying *RFC-legal on the wire*. Every
//! frame it emits parses cleanly and satisfies the conformance ledgers;
//! the attacks abuse resource accounting, not the grammar. That legality
//! is the point of the slow-rate family: nothing on the wire is malformed,
//! so only resource/e­vent-sequence analysis (the guard and detector in
//! this crate) can tell an attacker from a slow client.
//!
//! The client is fully deterministic (no RNG): its schedule is fixed by
//! the configured interval, so runs are byte-identical at any thread
//! count.

use h2priv_http2::{
    encode_frame, flags, hpack, ErrorCode, Frame, FrameDecoder, FrameType, HeaderField, Settings,
    StreamId, CLIENT_PREFACE,
};
use h2priv_netsim::{SimDuration, SimTime};

/// The four slow-rate attack workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DosAttack {
    /// Open one request and trickle its header block one CONTINUATION
    /// byte per interval, never sending END_HEADERS: RFC 7540 §4.3 forbids
    /// the receiver from processing any other frame on the connection
    /// until the sequence completes, so one cheap connection pins a
    /// header-parser worker indefinitely.
    SlowHeaders,
    /// Request real objects, advertise a zero initial stream window, then
    /// drip one-byte WINDOW_UPDATEs per interval: the responses trickle
    /// out one byte at a time, holding their workers and mux state for the
    /// whole (unbounded) transfer. The "progress" defeats naive idle
    /// timeouts — only progress-*rate* enforcement catches it.
    SlowRead,
    /// Send an empty, non-ACK SETTINGS frame every interval: each one
    /// forces the server to apply it and queue an ACK (RFC 7540 §6.5.3),
    /// burning server cycles for six attacker bytes apiece.
    SettingsFlood,
    /// Open complete GET requests up to the server's advertised
    /// `SETTINGS_MAX_CONCURRENT_STREAMS` with a zero-byte stream window
    /// and then go silent: every response is ready but unsendable, so the
    /// whole worker pool sits blocked on flow control forever.
    ZeroWindowHoard,
}

impl DosAttack {
    /// All workloads, exhibit order.
    pub fn all() -> [DosAttack; 4] {
        [
            DosAttack::SlowHeaders,
            DosAttack::SlowRead,
            DosAttack::SettingsFlood,
            DosAttack::ZeroWindowHoard,
        ]
    }

    /// Stable display / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            DosAttack::SlowHeaders => "slow-headers",
            DosAttack::SlowRead => "slow-read",
            DosAttack::SettingsFlood => "settings-flood",
            DosAttack::ZeroWindowHoard => "zero-window-hoard",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<DosAttack> {
        DosAttack::all().into_iter().find(|a| a.name() == name)
    }
}

/// Attack-client configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DosConfig {
    /// Which workload to mount.
    pub attack: DosAttack,
    /// Pacing of the slow primitive: one CONTINUATION byte, one one-byte
    /// WINDOW_UPDATE per hoarded stream, or one SETTINGS frame per
    /// interval.
    pub interval: SimDuration,
    /// Streams to hoard (`SlowRead` / `ZeroWindowHoard`); capped by the
    /// server's advertised `SETTINGS_MAX_CONCURRENT_STREAMS`.
    pub streams: u32,
    /// Paths requested by the hoarding workloads (cycled across streams).
    /// Should name real objects so responses carry bodies worth holding.
    pub paths: Vec<String>,
}

impl Default for DosConfig {
    fn default() -> Self {
        DosConfig {
            attack: DosAttack::SlowHeaders,
            interval: SimDuration::from_millis(500),
            streams: u32::MAX,
            paths: vec!["/index.html".to_owned()],
        }
    }
}

impl DosConfig {
    /// The default workload setup for one attack variant.
    pub fn for_attack(attack: DosAttack) -> Self {
        let interval = match attack {
            // One control frame per ~RTO for the slow primitives; the
            // flood runs three orders of magnitude hotter.
            DosAttack::SettingsFlood => SimDuration::from_millis(5),
            _ => SimDuration::from_millis(500),
        };
        DosConfig {
            attack,
            interval,
            ..DosConfig::default()
        }
    }
}

/// Counters the exhibits report per attacker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DosClientStats {
    /// Frames put on the wire (preface excluded).
    pub frames_sent: u64,
    /// CONTINUATION fragments dribbled.
    pub continuations_sent: u64,
    /// Non-ACK SETTINGS frames flooded.
    pub settings_sent: u64,
    /// One-byte WINDOW_UPDATE drips sent.
    pub window_updates_sent: u64,
    /// Request streams opened.
    pub streams_opened: u64,
    /// RST_STREAM frames received (shed or refused streams).
    pub resets_received: u64,
    /// Response body bytes the server managed to squeeze through.
    pub data_bytes_received: u64,
}

/// Sans-IO malicious client. The host pumps it like an application:
/// server-direction plaintext in via [`DosClient::on_plaintext`], wire
/// bytes out via [`DosClient::poll_wire`], timer via
/// [`DosClient::next_wakeup`].
#[derive(Debug)]
pub struct DosClient {
    config: DosConfig,
    decoder: FrameDecoder,
    /// Wire bytes staged for the next [`poll_wire`](Self::poll_wire).
    out: Vec<u8>,
    /// Control responses (SETTINGS/PING ACKs) that must wait while our own
    /// HEADERS/CONTINUATION sequence is open (§4.3: nothing may
    /// interleave).
    deferred: Vec<u8>,
    deferred_frames: u64,
    started: bool,
    handshake_done: bool,
    server_settings: Settings,
    /// Remaining header-block bytes of the slow-headers trickle.
    trickle: Vec<u8>,
    /// True once our HEADERS frame opened the (never-ending) sequence.
    seq_open: bool,
    next_action: Option<SimTime>,
    opened: Vec<StreamId>,
    attack_started: Option<SimTime>,
    shed_at: Option<SimTime>,
    stats: DosClientStats,
}

impl DosClient {
    /// Creates the attacker; it stays silent until [`start`](Self::start).
    pub fn new(config: DosConfig) -> Self {
        DosClient {
            config,
            decoder: FrameDecoder::new(false),
            out: Vec::new(),
            deferred: Vec::new(),
            deferred_frames: 0,
            started: false,
            handshake_done: false,
            server_settings: Settings::default(),
            trickle: Vec::new(),
            seq_open: false,
            next_action: None,
            opened: Vec::new(),
            attack_started: None,
            shed_at: None,
            stats: DosClientStats::default(),
        }
    }

    /// The configured workload.
    pub fn attack(&self) -> DosAttack {
        self.config.attack
    }

    /// Counters.
    pub fn stats(&self) -> DosClientStats {
        self.stats
    }

    /// When the server shed this attacker (first `ENHANCE_YOUR_CALM`
    /// RST_STREAM or any GOAWAY), if it has.
    pub fn shed_at(&self) -> Option<SimTime> {
        self.shed_at
    }

    /// When the attack primitive began (handshake done, first hostile
    /// frame staged).
    pub fn attack_started(&self) -> Option<SimTime> {
        self.attack_started
    }

    /// True once the server has shed the attack — the host may count the
    /// attacker finished.
    pub fn is_done(&self) -> bool {
        self.shed_at.is_some()
    }

    /// Begins the connection: client preface plus our SETTINGS. The
    /// hoarding workloads advertise a zero-byte initial stream window —
    /// legal per RFC 7540 §6.9.2, and the whole point.
    pub fn start(&mut self, now: SimTime) {
        if self.started {
            return;
        }
        self.started = true;
        self.out.extend_from_slice(CLIENT_PREFACE);
        let initial_window_size = match self.config.attack {
            DosAttack::SlowRead | DosAttack::ZeroWindowHoard => 0,
            _ => Settings::default().initial_window_size,
        };
        let settings = Settings {
            initial_window_size,
            ..Settings::default()
        };
        self.push_frame(&Frame::Settings {
            ack: false,
            settings: settings.to_wire(),
        });
        // Poke the schedule so the attack launches as soon as the server's
        // SETTINGS lands (checked each wakeup).
        self.next_action = Some(now + self.config.interval);
    }

    fn push_frame(&mut self, frame: &Frame) {
        self.out.extend_from_slice(&encode_frame(frame));
        self.stats.frames_sent += 1;
    }

    /// Raw HEADERS frame carrying `block_fragment`, END_HEADERS *clear* —
    /// the codec never emits this shape, which is exactly why the attacker
    /// hand-rolls it.
    fn push_open_headers(&mut self, stream: StreamId, fragment: &[u8]) {
        self.push_raw(FrameType::Headers, flags::END_STREAM, stream, fragment);
    }

    fn push_continuation(&mut self, stream: StreamId, fragment: &[u8], end_headers: bool) {
        let fl = if end_headers { flags::END_HEADERS } else { 0 };
        self.push_raw(FrameType::Continuation, fl, stream, fragment);
        self.stats.continuations_sent += 1;
    }

    fn push_raw(&mut self, ty: FrameType, fl: u8, stream: StreamId, payload: &[u8]) {
        let len = payload.len();
        self.out.extend_from_slice(&[
            (len >> 16) as u8,
            (len >> 8) as u8,
            len as u8,
            ty.as_u8(),
            fl,
        ]);
        self.out.extend_from_slice(&stream.0.to_be_bytes());
        self.out.extend_from_slice(payload);
        self.stats.frames_sent += 1;
    }

    /// A complete GET for `path` on `stream` (END_HEADERS + END_STREAM).
    fn push_get(&mut self, enc: &mut hpack::Encoder, stream: StreamId, path: &str) {
        let block = enc.encode(&request_headers(path));
        self.push_raw(
            FrameType::Headers,
            flags::END_HEADERS | flags::END_STREAM,
            stream,
            &block,
        );
        self.opened.push(stream);
        self.stats.streams_opened += 1;
    }

    /// Launches the attack primitive once the server's SETTINGS arrived.
    fn launch(&mut self, now: SimTime) {
        self.attack_started = Some(now);
        match self.config.attack {
            DosAttack::SlowHeaders => {
                // A fat header block gives the one-byte dribble an
                // effectively unbounded supply; the filler value is
                // incompressible garbage only in the sense that HPACK
                // won't shrink a unique literal.
                let mut headers = request_headers("/");
                headers.push(HeaderField::new("x-slow", "y".repeat(512)));
                let mut enc = hpack::Encoder::new();
                self.trickle = enc.encode(&headers);
                let first: Vec<u8> = self.trickle.drain(..1).collect();
                self.push_open_headers(StreamId(1), &first);
                self.seq_open = true;
                self.stats.streams_opened += 1;
            }
            DosAttack::SlowRead | DosAttack::ZeroWindowHoard => {
                let limit = self.server_settings.max_concurrent_streams;
                let n = self.config.streams.min(limit).max(1);
                let mut enc = hpack::Encoder::new();
                let paths = self.config.paths.clone();
                for i in 0..n {
                    let stream = StreamId(1 + 2 * i);
                    let path = &paths[i as usize % paths.len()];
                    self.push_get(&mut enc, stream, path);
                }
            }
            DosAttack::SettingsFlood => {} // pure ticker, below
        }
    }

    /// One pacing tick of the slow primitive.
    fn tick(&mut self, now: SimTime) {
        if self.attack_started.is_none() {
            if !self.handshake_done {
                // Server SETTINGS not seen yet; check again next interval.
                self.next_action = Some(now + self.config.interval);
                return;
            }
            self.launch(now);
            // The hoard is one burst of opens followed by silence; the
            // other workloads keep their pacing tick alive.
            self.next_action = match self.config.attack {
                DosAttack::ZeroWindowHoard => None,
                _ => Some(now + self.config.interval),
            };
            return;
        }
        match self.config.attack {
            DosAttack::SlowHeaders => {
                // One byte per tick; once the block runs dry, zero-length
                // CONTINUATIONs (legal, never END_HEADERS) hold the
                // sequence open forever.
                let fragment: Vec<u8> = if self.trickle.is_empty() {
                    Vec::new()
                } else {
                    self.trickle.drain(..1).collect()
                };
                self.push_continuation(StreamId(1), &fragment, false);
            }
            DosAttack::SlowRead => {
                for i in 0..self.opened.len() {
                    let stream = self.opened[i];
                    self.push_frame(&Frame::WindowUpdate {
                        stream_id: stream,
                        increment: 1,
                    });
                    self.stats.window_updates_sent += 1;
                }
            }
            DosAttack::SettingsFlood => {
                self.push_frame(&Frame::Settings {
                    ack: false,
                    settings: vec![],
                });
                self.stats.settings_sent += 1;
            }
            DosAttack::ZeroWindowHoard => {} // silence is the attack
        }
        // The hoard goes quiet after launch; everything else keeps ticking.
        self.next_action = match self.config.attack {
            DosAttack::ZeroWindowHoard => None,
            _ => Some(now + self.config.interval),
        };
    }

    /// Feeds decrypted server-direction bytes in.
    pub fn on_plaintext(&mut self, bytes: &[u8], now: SimTime) {
        self.decoder.push(bytes);
        while let Ok(Some(frame)) = self.decoder.next_frame() {
            match frame {
                Frame::Settings { ack, settings } => {
                    if ack {
                        continue;
                    }
                    self.server_settings.apply(&settings);
                    self.handshake_done = true;
                    let ack = encode_frame(&Frame::Settings {
                        ack: true,
                        settings: vec![],
                    });
                    // §4.3: never interleave into our own open sequence.
                    if self.seq_open {
                        self.deferred.extend_from_slice(&ack);
                        self.deferred_frames += 1;
                    } else {
                        self.out.extend_from_slice(&ack);
                        self.stats.frames_sent += 1;
                    }
                }
                Frame::Ping { ack: false, data } => {
                    let pong = encode_frame(&Frame::Ping { ack: true, data });
                    if self.seq_open {
                        self.deferred.extend_from_slice(&pong);
                        self.deferred_frames += 1;
                    } else {
                        self.out.extend_from_slice(&pong);
                        self.stats.frames_sent += 1;
                    }
                }
                Frame::RstStream { error_code, .. } => {
                    self.stats.resets_received += 1;
                    if error_code == ErrorCode::EnhanceYourCalm && self.shed_at.is_none() {
                        self.shed_at = Some(now);
                    }
                }
                Frame::GoAway { .. } if self.shed_at.is_none() => {
                    self.shed_at = Some(now);
                }
                Frame::Data { data, .. } => {
                    self.stats.data_bytes_received += data.len() as u64;
                }
                _ => {}
            }
        }
    }

    /// Drains staged wire bytes, running any due pacing tick first.
    /// Returns an empty vec when there is nothing to send.
    pub fn poll_wire(&mut self, now: SimTime) -> Vec<u8> {
        if self.shed_at.is_none() {
            while let Some(at) = self.next_action {
                if at > now {
                    break;
                }
                self.tick(now);
            }
        } else {
            self.next_action = None;
        }
        if !self.seq_open && !self.deferred.is_empty() {
            self.stats.frames_sent += self.deferred_frames;
            self.deferred_frames = 0;
            let deferred = std::mem::take(&mut self.deferred);
            self.out.extend_from_slice(&deferred);
        }
        std::mem::take(&mut self.out)
    }

    /// Next pacing deadline, if the attack is still live.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        if self.shed_at.is_some() {
            return None;
        }
        self.next_action
    }
}

/// The GET header list the attacker sends — shaped like the honest
/// browser's requests so nothing but the *pacing* is anomalous.
fn request_headers(path: &str) -> Vec<HeaderField> {
    vec![
        HeaderField::new(":method", "GET"),
        HeaderField::new(":scheme", "https"),
        HeaderField::new(":authority", "www.isidewith.com"),
        HeaderField::new(":path", path),
        HeaderField::new("user-agent", "h2priv-firefox/74.0"),
        HeaderField::new("accept", "*/*"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_frames(bytes: &[u8]) -> Vec<Frame> {
        let mut dec = FrameDecoder::new(true);
        dec.push(bytes);
        std::iter::from_fn(|| dec.next_frame().expect("attacker bytes parse")).collect()
    }

    fn handshake(client: &mut DosClient, now: SimTime) -> Vec<u8> {
        client.start(now);
        let server_settings = encode_frame(&Frame::Settings {
            ack: false,
            settings: Settings::default().to_wire(),
        });
        client.on_plaintext(&server_settings, now);
        client.poll_wire(now)
    }

    #[test]
    fn attack_names_roundtrip() {
        for a in DosAttack::all() {
            assert_eq!(DosAttack::parse(a.name()), Some(a));
        }
        assert_eq!(DosAttack::parse("nope"), None);
    }

    #[test]
    fn slow_headers_dribbles_continuations() {
        let mut c = DosClient::new(DosConfig::for_attack(DosAttack::SlowHeaders));
        let t0 = SimTime::ZERO;
        handshake(&mut c, t0);
        // First tick opens the sequence; later ticks each add one byte.
        let t1 = t0 + SimDuration::from_millis(500);
        let bytes = c.poll_wire(t1);
        // HEADERS without END_HEADERS cannot complete in the decoder...
        let mut dec = FrameDecoder::new(false);
        dec.push(&bytes);
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.in_progress_header_stream(), Some(StreamId(1)));
        for i in 2..6 {
            let t = t0 + SimDuration::from_millis(500 * i);
            let frag = c.poll_wire(t);
            assert!(!frag.is_empty(), "tick {i} dribbles");
            dec.push(&frag);
            assert!(dec.next_frame().unwrap().is_none());
        }
        assert!(c.stats().continuations_sent >= 4);
        assert_eq!(dec.in_progress_header_stream(), Some(StreamId(1)));
    }

    #[test]
    fn zero_window_hoard_opens_up_to_the_advertised_limit() {
        let mut c = DosClient::new(DosConfig::for_attack(DosAttack::ZeroWindowHoard));
        let t0 = SimTime::ZERO;
        let hello = handshake(&mut c, t0);
        let frames = drain_frames(&hello);
        let our_settings = frames
            .iter()
            .find_map(|f| match f {
                Frame::Settings {
                    ack: false,
                    settings,
                } => Some(settings.clone()),
                _ => None,
            })
            .expect("attacker sends SETTINGS");
        let mut s = Settings::default();
        s.apply(&our_settings);
        assert_eq!(s.initial_window_size, 0, "the hoard advertises no credit");
        let t1 = t0 + SimDuration::from_millis(500);
        let opens = drain_frames(&[hello, c.poll_wire(t1)].concat());
        let headers: Vec<StreamId> = opens
            .iter()
            .filter_map(|f| match f {
                Frame::Headers { stream_id, .. } => Some(*stream_id),
                _ => None,
            })
            .collect();
        assert_eq!(
            headers.len() as u32,
            Settings::default().max_concurrent_streams
        );
        assert_eq!(headers[0], StreamId(1));
        // Then silence.
        assert_eq!(c.next_wakeup(), None);
    }

    #[test]
    fn settings_flood_ticks_every_interval() {
        let mut c = DosClient::new(DosConfig::for_attack(DosAttack::SettingsFlood));
        let t0 = SimTime::ZERO;
        handshake(&mut c, t0);
        // Pump like the host does: one poll per scheduled wakeup.
        let mut now = t0;
        while now < t0 + SimDuration::from_millis(100) {
            now = c.next_wakeup().expect("flood keeps ticking");
            c.poll_wire(now);
        }
        // 5 ms pacing: ~20 ticks in 100 ms, the first spent on launch.
        assert!(c.stats().settings_sent >= 15, "{:?}", c.stats());
    }

    #[test]
    fn goaway_sheds_the_attack() {
        let mut c = DosClient::new(DosConfig::for_attack(DosAttack::SlowRead));
        let t0 = SimTime::ZERO;
        handshake(&mut c, t0);
        c.poll_wire(t0 + SimDuration::from_millis(500));
        assert!(c.attack_started().is_some());
        let t = t0 + SimDuration::from_secs(2);
        c.on_plaintext(
            &encode_frame(&Frame::GoAway {
                last_stream_id: StreamId(0),
                error_code: ErrorCode::EnhanceYourCalm,
            }),
            t,
        );
        assert_eq!(c.shed_at(), Some(t));
        assert!(c.is_done());
        assert_eq!(c.next_wakeup(), None);
    }
}
