//! Online event-sequence detector for slow-rate HTTP/2 DoS.
//!
//! [`DosDetector`] is the online counterpart of the offline conformance
//! tap: a frame-header scanner sitting on the server's TLS-terminating
//! edge (the first point where client plaintext exists — a mid-path
//! gateway sees only ciphertext), fed the client→server byte stream as it
//! arrives. It keeps O(1) state per connection and parses only frame
//! headers plus two cheap payloads (SETTINGS and WINDOW_UPDATE), so it
//! can run inline at gateway rates.
//!
//! Each slow-rate workload has an *event-sequence* signature no honest
//! client produces under the calibrated model:
//!
//! * **slow-headers** — a HEADERS/CONTINUATION sequence still open after
//!   several fragments and a time span; honest stacks emit END_HEADERS in
//!   the first frame (this repo's codec never emits CONTINUATION at all).
//! * **slow-read** — a run of tiny WINDOW_UPDATE increments; the honest
//!   browser re-credits in half-window (≈1 MiB) steps.
//! * **settings-flood** — non-ACK SETTINGS above a rate; a handshake
//!   contributes exactly one.
//! * **zero-window-hoard** — `SETTINGS_INITIAL_WINDOW_SIZE = 0` plus many
//!   opened streams and a silence window; the honest client advertises a
//!   2 MiB stream window.
//!
//! The signatures are *structural*: benign traffic cannot fire them even
//! in the tail (pinned by the false-positive suite in `tests/`), which is
//! what makes zero-FP detection honest rather than tuned.

use h2priv_http2::{FrameType, StreamId, CLIENT_PREFACE, FRAME_HEADER_LEN};
use h2priv_netsim::{SimDuration, SimTime};

/// Detection thresholds. Defaults sit an order of magnitude outside
/// anything the calibrated honest client does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Fragments before an open header sequence is suspect.
    pub header_fragments: u64,
    /// Age before an open header sequence is suspect.
    pub header_span: SimDuration,
    /// WINDOW_UPDATE increments at or below this are "tiny".
    pub tiny_update_max: u32,
    /// Tiny updates that trigger the slow-read alert.
    pub tiny_updates: u64,
    /// Window for the SETTINGS rate signature.
    pub settings_window: SimDuration,
    /// Non-ACK SETTINGS allowed per window.
    pub settings_limit: u64,
    /// Zero-window streams held before the hoard alert.
    pub hoard_streams: u64,
    /// Silence after the last open before the hoard alert fires.
    pub hoard_hold: SimDuration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            header_fragments: 4,
            header_span: SimDuration::from_millis(1500),
            tiny_update_max: 64,
            tiny_updates: 8,
            settings_window: SimDuration::from_secs(1),
            settings_limit: 15,
            hoard_streams: 16,
            hoard_hold: SimDuration::from_secs(2),
        }
    }
}

/// Which signature fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// Trickled HEADERS/CONTINUATION sequence.
    SlowHeaders,
    /// Tiny WINDOW_UPDATE drip.
    SlowRead,
    /// Non-ACK SETTINGS above rate.
    SettingsFlood,
    /// Zero-window stream hoarding.
    ZeroWindowHoard,
}

impl AlertKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::SlowHeaders => "slow-headers",
            AlertKind::SlowRead => "slow-read",
            AlertKind::SettingsFlood => "settings-flood",
            AlertKind::ZeroWindowHoard => "zero-window-hoard",
        }
    }
}

/// One detector alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Signature that fired.
    pub kind: AlertKind,
    /// Offending stream, when the signature is per-stream.
    pub stream: Option<StreamId>,
    /// When it fired.
    pub at: SimTime,
    /// Human-readable evidence.
    pub detail: String,
}

/// Open header-sequence tracking.
#[derive(Debug, Clone, Copy)]
struct OpenSequence {
    stream: StreamId,
    fragments: u64,
    first_at: SimTime,
}

/// Per-connection online detector. Feed it client→server plaintext via
/// [`on_bytes`](Self::on_bytes); poll [`next_wakeup`](Self::next_wakeup)
/// and call [`on_wakeup`](Self::on_wakeup) so time-triggered signatures
/// (sequence age, hoard silence) fire without inbound traffic.
#[derive(Debug)]
pub struct DosDetector {
    config: DetectorConfig,
    /// Partial frame bytes awaiting a complete header (+ needed payload).
    buf: Vec<u8>,
    preface_remaining: usize,
    seq: Option<OpenSequence>,
    tiny_updates: u64,
    settings_mark: (u64, SimTime),
    settings_seen: u64,
    /// Client's advertised SETTINGS_INITIAL_WINDOW_SIZE, once seen.
    client_window: Option<u32>,
    streams_opened: u64,
    last_open_at: SimTime,
    /// WINDOW_UPDATE seen since the last stream open (clears the hoard's
    /// "silence" precondition).
    credit_since_open: bool,
    alerts: Vec<Alert>,
    fired: [bool; 4],
}

impl DosDetector {
    /// Creates a detector with the given thresholds.
    pub fn new(config: DetectorConfig) -> Self {
        DosDetector {
            config,
            buf: Vec::new(),
            preface_remaining: CLIENT_PREFACE.len(),
            seq: None,
            tiny_updates: 0,
            settings_mark: (0, SimTime::ZERO),
            settings_seen: 0,
            client_window: None,
            streams_opened: 0,
            last_open_at: SimTime::ZERO,
            credit_since_open: false,
            alerts: Vec::new(),
            fired: [false; 4],
        }
    }

    /// Alerts raised so far (at most one per [`AlertKind`]).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// True once any signature has fired.
    pub fn alerted(&self) -> bool {
        !self.alerts.is_empty()
    }

    fn fire(&mut self, kind: AlertKind, stream: Option<StreamId>, at: SimTime, detail: String) {
        let slot = match kind {
            AlertKind::SlowHeaders => 0,
            AlertKind::SlowRead => 1,
            AlertKind::SettingsFlood => 2,
            AlertKind::ZeroWindowHoard => 3,
        };
        if self.fired[slot] {
            return;
        }
        self.fired[slot] = true;
        self.alerts.push(Alert {
            kind,
            stream,
            at,
            detail,
        });
    }

    /// Scans newly arrived client→server plaintext.
    pub fn on_bytes(&mut self, bytes: &[u8], now: SimTime) {
        let mut bytes = bytes;
        if self.preface_remaining > 0 {
            let n = self.preface_remaining.min(bytes.len());
            self.preface_remaining -= n;
            bytes = &bytes[n..];
            if bytes.is_empty() {
                return;
            }
        }
        self.buf.extend_from_slice(bytes);
        loop {
            if self.buf.len() < FRAME_HEADER_LEN {
                break;
            }
            let len = ((self.buf[0] as usize) << 16)
                | ((self.buf[1] as usize) << 8)
                | self.buf[2] as usize;
            if self.buf.len() < FRAME_HEADER_LEN + len {
                break;
            }
            let ty = FrameType::from_u8(self.buf[3]);
            let fl = self.buf[4];
            let stream = StreamId(
                u32::from_be_bytes([self.buf[5], self.buf[6], self.buf[7], self.buf[8]])
                    & 0x7fff_ffff,
            );
            let payload_end = FRAME_HEADER_LEN + len;
            self.inspect(ty, fl, stream, FRAME_HEADER_LEN, payload_end, now);
            self.buf.drain(..payload_end);
        }
        self.on_wakeup(now);
    }

    /// One frame, header already parsed; payload at `buf[start..end]`.
    fn inspect(
        &mut self,
        ty: Option<FrameType>,
        fl: u8,
        stream: StreamId,
        start: usize,
        end: usize,
        now: SimTime,
    ) {
        use h2priv_http2::flags;
        match ty {
            Some(FrameType::Headers) => {
                self.streams_opened += 1;
                self.last_open_at = now;
                self.credit_since_open = false;
                if fl & flags::END_HEADERS == 0 {
                    self.seq = Some(OpenSequence {
                        stream,
                        fragments: 1,
                        first_at: now,
                    });
                }
            }
            Some(FrameType::Continuation) => {
                if let Some(seq) = &mut self.seq {
                    if seq.stream == stream {
                        seq.fragments += 1;
                    }
                }
                if fl & flags::END_HEADERS != 0 {
                    self.seq = None;
                }
            }
            Some(FrameType::Settings) => {
                if fl & flags::ACK != 0 {
                    return;
                }
                self.settings_seen += 1;
                // Walk the (id, value) pairs for INITIAL_WINDOW_SIZE (0x4).
                let mut at = start;
                while at + 6 <= end {
                    let id = u16::from_be_bytes([self.buf[at], self.buf[at + 1]]);
                    let value = u32::from_be_bytes([
                        self.buf[at + 2],
                        self.buf[at + 3],
                        self.buf[at + 4],
                        self.buf[at + 5],
                    ]);
                    if id == 0x4 {
                        self.client_window = Some(value);
                    }
                    at += 6;
                }
                let (mark_count, mark_at) = self.settings_mark;
                if now.saturating_since(mark_at) >= self.config.settings_window {
                    self.settings_mark = (self.settings_seen, now);
                } else if self.settings_seen - mark_count > self.config.settings_limit {
                    let n = self.settings_seen - mark_count;
                    self.fire(
                        AlertKind::SettingsFlood,
                        None,
                        now,
                        format!("{n} SETTINGS in one rate window"),
                    );
                }
            }
            Some(FrameType::WindowUpdate) => {
                self.credit_since_open = true;
                if end - start >= 4 {
                    let increment = u32::from_be_bytes([
                        self.buf[start],
                        self.buf[start + 1],
                        self.buf[start + 2],
                        self.buf[start + 3],
                    ]) & 0x7fff_ffff;
                    if increment <= self.config.tiny_update_max {
                        self.tiny_updates += 1;
                        if self.tiny_updates >= self.config.tiny_updates {
                            self.fire(
                                AlertKind::SlowRead,
                                Some(stream),
                                now,
                                format!(
                                    "{} WINDOW_UPDATEs of <= {} bytes",
                                    self.tiny_updates, self.config.tiny_update_max
                                ),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Evaluates the time-triggered signatures. The host calls this at
    /// every [`next_wakeup`](Self::next_wakeup) deadline; `on_bytes` also
    /// calls it after each scan.
    pub fn on_wakeup(&mut self, now: SimTime) {
        if let Some(seq) = self.seq {
            if seq.fragments >= self.config.header_fragments
                && now.saturating_since(seq.first_at) >= self.config.header_span
            {
                self.fire(
                    AlertKind::SlowHeaders,
                    Some(seq.stream),
                    now,
                    format!("header sequence open across {} fragments", seq.fragments),
                );
            }
        }
        if self.client_window == Some(0)
            && self.streams_opened >= self.config.hoard_streams
            && !self.credit_since_open
            && now.saturating_since(self.last_open_at) >= self.config.hoard_hold
        {
            self.fire(
                AlertKind::ZeroWindowHoard,
                None,
                now,
                format!("{} streams held on a zero-byte window", self.streams_opened),
            );
        }
    }

    /// Earliest time a time-triggered signature could fire, or `None`
    /// while nothing is pending. Quiet benign connections never schedule a
    /// wakeup, so the detector is schedule-invisible on clean traffic.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            next = Some(next.map_or(t, |n: SimTime| n.min(t)));
        };
        if !self.fired[0] {
            if let Some(seq) = self.seq {
                if seq.fragments >= self.config.header_fragments {
                    consider(seq.first_at + self.config.header_span);
                }
            }
        }
        if !self.fired[3]
            && self.client_window == Some(0)
            && self.streams_opened >= self.config.hoard_streams
            && !self.credit_since_open
        {
            consider(self.last_open_at + self.config.hoard_hold);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{DosAttack, DosClient, DosConfig};
    use h2priv_http2::{encode_frame, Frame, Settings};

    /// Runs the attacker's own wire output through the detector until an
    /// alert fires or `deadline` passes; returns the first alert time.
    fn detect(attack: DosAttack, deadline: SimTime) -> Option<(AlertKind, SimTime)> {
        let mut client = DosClient::new(DosConfig::for_attack(attack));
        let mut det = DosDetector::new(DetectorConfig::default());
        let t0 = SimTime::ZERO;
        client.start(t0);
        client.on_plaintext(
            &encode_frame(&Frame::Settings {
                ack: false,
                settings: Settings::default().to_wire(),
            }),
            t0,
        );
        let mut now = t0;
        while now <= deadline {
            let bytes = client.poll_wire(now);
            if !bytes.is_empty() {
                det.on_bytes(&bytes, now);
            }
            if let Some(alert) = det.alerts().first() {
                return Some((alert.kind, alert.at));
            }
            // Advance to the next interesting instant.
            let step = [client.next_wakeup(), det.next_wakeup()]
                .into_iter()
                .flatten()
                .min()
                .unwrap_or(deadline + SimDuration::from_millis(1));
            if step <= now {
                now += SimDuration::from_millis(1);
            } else {
                now = step;
            }
            det.on_wakeup(now);
        }
        None
    }

    #[test]
    fn every_attack_variant_is_detected() {
        let deadline = SimTime::from_secs(30);
        let expect = [
            (DosAttack::SlowHeaders, AlertKind::SlowHeaders),
            (DosAttack::SlowRead, AlertKind::SlowRead),
            (DosAttack::SettingsFlood, AlertKind::SettingsFlood),
            (DosAttack::ZeroWindowHoard, AlertKind::ZeroWindowHoard),
        ];
        for (attack, kind) in expect {
            let hit = detect(attack, deadline);
            assert_eq!(
                hit.map(|(k, _)| k),
                Some(kind),
                "{} must trip its signature",
                attack.name()
            );
        }
    }

    #[test]
    fn benign_style_traffic_raises_nothing() {
        let mut det = DosDetector::new(DetectorConfig::default());
        let t0 = SimTime::ZERO;
        let mut bytes = h2priv_http2::CLIENT_PREFACE.to_vec();
        // Honest handshake: one SETTINGS with a 2 MiB stream window.
        bytes.extend_from_slice(&encode_frame(&Frame::Settings {
            ack: false,
            settings: Settings {
                initial_window_size: 2 * 1024 * 1024,
                ..Settings::default()
            }
            .to_wire(),
        }));
        // A burst of complete GETs...
        let mut enc = h2priv_http2::hpack::Encoder::new();
        for i in 0..40u32 {
            let block = enc.encode(&[
                h2priv_http2::HeaderField::new(":method", "GET"),
                h2priv_http2::HeaderField::new(":path", format!("/obj{i}")),
            ]);
            bytes.extend_from_slice(&h2priv_http2::encode_headers_split(
                StreamId(1 + 2 * i),
                true,
                &block,
                16384,
            ));
        }
        // ...and honest half-window re-credits.
        for i in 0..40u32 {
            bytes.extend_from_slice(&encode_frame(&Frame::WindowUpdate {
                stream_id: StreamId(1 + 2 * i),
                increment: 1024 * 1024,
            }));
        }
        det.on_bytes(&bytes, t0);
        det.on_wakeup(t0 + SimDuration::from_secs(60));
        assert!(det.alerts().is_empty(), "{:?}", det.alerts());
        assert_eq!(det.next_wakeup(), None);
    }

    #[test]
    fn split_frame_delivery_reassembles() {
        // One-byte-at-a-time delivery of a SETTINGS flood still counts.
        let mut det = DosDetector::new(DetectorConfig::default());
        let mut bytes = h2priv_http2::CLIENT_PREFACE.to_vec();
        for _ in 0..20 {
            bytes.extend_from_slice(&encode_frame(&Frame::Settings {
                ack: false,
                settings: vec![],
            }));
        }
        for b in bytes {
            det.on_bytes(&[b], SimTime::from_millis(10));
        }
        assert_eq!(det.alerts().len(), 1);
        assert_eq!(det.alerts()[0].kind, AlertKind::SettingsFlood);
    }
}
