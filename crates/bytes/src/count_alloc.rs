//! A thread-local allocation-counting `GlobalAlloc`, for regression tests
//! that assert a hot path is allocation-free.
//!
//! A test binary installs [`CountingAlloc`] as its `#[global_allocator]`
//! and wraps the code under scrutiny in [`measure`]; the returned count is
//! the number of heap allocations (`alloc`, `alloc_zeroed` and growing
//! `realloc` calls) performed by the *current thread* while the closure
//! ran. Counting is off by default, so the rest of the test binary —
//! harness, setup, assertions — runs at full speed and unobserved.
//!
//! This module needs `unsafe` (the `GlobalAlloc` contract), which is why
//! it lives outside the `forbid(unsafe_code)` shared-slice module and
//! behind the `count-allocs` feature.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Counts this thread's allocations while enabled, delegating the actual
/// memory management to [`System`].
pub struct CountingAlloc;

fn bump() {
    // `Cell<bool>`/`Cell<u64>` have no destructors, so these accesses
    // never re-enter the allocator.
    if ENABLED.with(Cell::get) {
        COUNT.with(|c| c.set(c.get() + 1));
    }
}

// SAFETY: all calls delegate directly to `System`; the counting side
// channel touches only const-initialized thread-local `Cell`s, which
// neither allocate nor unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Runs `f` with allocation counting enabled and returns `(result,
/// allocations)` for the current thread. Nested calls count into the
/// innermost `measure`.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let (was_enabled, before) = (ENABLED.with(Cell::get), COUNT.with(Cell::get));
    ENABLED.with(|e| e.set(true));
    let result = f();
    ENABLED.with(|e| e.set(was_enabled));
    let after = COUNT.with(Cell::get);
    (result, after - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: these tests exercise the bookkeeping only; without
    // `#[global_allocator] static A: CountingAlloc` in the binary the
    // measured count stays 0. The end-to-end assertion lives in the TCP
    // crate's zero-copy integration test, which does install it.

    #[test]
    fn measure_returns_closure_result() {
        let (value, _count) = measure(|| 21 * 2);
        assert_eq!(value, 42);
    }

    #[test]
    fn measure_restores_disabled_state() {
        let _ = measure(|| ());
        assert!(!ENABLED.with(Cell::get));
    }
}
