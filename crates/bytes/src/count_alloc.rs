//! A counting `GlobalAlloc`: thread-local allocation counts for
//! regression tests, plus process-wide byte gauges for memory telemetry.
//!
//! Two independent layers share the one allocator:
//!
//! * **Per-thread counts** — a test binary installs [`CountingAlloc`] as
//!   its `#[global_allocator]` and wraps the code under scrutiny in
//!   [`measure`]; the returned count is the number of heap allocations
//!   (`alloc`, `alloc_zeroed` and growing `realloc` calls) performed by
//!   the *current thread* while the closure ran. Counting is off by
//!   default, so the rest of the test binary — harness, setup,
//!   assertions — runs at full speed and unobserved.
//! * **Process-wide byte gauges** — always on (two relaxed atomics per
//!   allocator call), tracking live heap bytes and their high-water mark.
//!   The `repro` binary installs the allocator and reports
//!   [`bytes_live`]/[`bytes_peak`] as `peak_alloc_bytes` /
//!   `bytes_per_pair` in `--bench-json`, the fleet memory-regression
//!   gate's inputs. Binaries that do not install the allocator simply
//!   read zeros.
//!
//! This module needs `unsafe` (the `GlobalAlloc` contract), which is why
//! it lives outside the `forbid(unsafe_code)` shared-slice module and
//! behind the `count-allocs` feature.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Live heap bytes across the whole process (allocated minus freed).
static BYTES_LIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`BYTES_LIVE`] since the last [`reset_bytes_peak`].
static BYTES_PEAK: AtomicU64 = AtomicU64::new(0);

/// Counts this thread's allocations while enabled — and every thread's
/// live/peak heap bytes, always — delegating the actual memory management
/// to [`System`].
pub struct CountingAlloc;

fn bump() {
    // `Cell<bool>`/`Cell<u64>` have no destructors, so these accesses
    // never re-enter the allocator.
    if ENABLED.with(Cell::get) {
        COUNT.with(|c| c.set(c.get() + 1));
    }
}

fn add_bytes(n: usize) {
    let live = BYTES_LIVE.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
    BYTES_PEAK.fetch_max(live, Ordering::Relaxed);
}

fn sub_bytes(n: usize) {
    BYTES_LIVE.fetch_sub(n as u64, Ordering::Relaxed);
}

// SAFETY: all calls delegate directly to `System`; the counting side
// channel touches only const-initialized thread-local `Cell`s and
// relaxed atomics, which neither allocate nor unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        add_bytes(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        add_bytes(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        if new_size >= layout.size() {
            add_bytes(new_size - layout.size());
        } else {
            sub_bytes(layout.size() - new_size);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        sub_bytes(layout.size());
        System.dealloc(ptr, layout)
    }
}

/// Runs `f` with allocation counting enabled and returns `(result,
/// allocations)` for the current thread. Nested calls count into the
/// innermost `measure`.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let (was_enabled, before) = (ENABLED.with(Cell::get), COUNT.with(Cell::get));
    ENABLED.with(|e| e.set(true));
    let result = f();
    ENABLED.with(|e| e.set(was_enabled));
    let after = COUNT.with(Cell::get);
    (result, after - before)
}

/// Live heap bytes right now (0 unless [`CountingAlloc`] is the binary's
/// global allocator).
pub fn bytes_live() -> u64 {
    BYTES_LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start or the last
/// [`reset_bytes_peak`] (0 unless [`CountingAlloc`] is installed).
pub fn bytes_peak() -> u64 {
    BYTES_PEAK.load(Ordering::Relaxed)
}

/// Re-arms the peak gauge at the current live level, so the next
/// [`bytes_peak`] reads the high-water mark of the region being measured
/// rather than of the whole process lifetime.
pub fn reset_bytes_peak() {
    BYTES_PEAK.store(BYTES_LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Runs `f` and returns `(result, peak_delta)`: how far the process-wide
/// live-byte gauge rose above its level at entry while `f` ran. With a
/// single measuring thread this is the closure's working-set high-water
/// mark; concurrent allocating threads add theirs in.
pub fn measure_peak_bytes<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = bytes_live();
    reset_bytes_peak();
    let result = f();
    let peak = bytes_peak();
    (result, peak.saturating_sub(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: these tests exercise the bookkeeping only; without
    // `#[global_allocator] static A: CountingAlloc` in the binary the
    // measured count stays 0. The end-to-end assertion lives in the TCP
    // crate's zero-copy integration test, which does install it.

    #[test]
    fn measure_returns_closure_result() {
        let (value, _count) = measure(|| 21 * 2);
        assert_eq!(value, 42);
    }

    #[test]
    fn measure_restores_disabled_state() {
        let _ = measure(|| ());
        assert!(!ENABLED.with(Cell::get));
    }

    #[test]
    fn byte_gauges_are_monotone_consistent() {
        // Without the allocator installed both read 0; with it installed
        // (other test binaries) peak >= live. Either way this holds:
        assert!(bytes_peak() >= bytes_live() || bytes_peak() == 0);
        let ((), delta) = measure_peak_bytes(|| ());
        assert_eq!(delta, 0);
    }
}
