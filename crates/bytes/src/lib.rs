//! Reference-counted shared byte slices — the zero-copy payload currency
//! of the h2priv stack.
//!
//! Every layer of the simulated stack used to hand payload bytes to the
//! next layer by copying them: the web server materialized object bodies,
//! HTTP/2 drained them into DATA frames, TLS re-materialized record
//! plaintext, and the TCP sender sliced `send_buf[a..b].to_vec()` for
//! every segment *and retransmit*. [`SharedBytes`] replaces those copies
//! with a reference-counted view (an `Arc`'d buffer plus offset/len):
//! slicing, splitting and cloning are O(1) and allocation-free, so a
//! sealed TLS record can flow from the sender's buffer through TCP
//! segmentation, netsim packet clones and wire taps without its bytes
//! ever being copied again.
//!
//! The type is deliberately minimal — think a std-only `bytes::Bytes`
//! with exactly the operations the stack needs. Buffers are **immutable
//! after construction**; all mutation is constructing new views.

#![warn(missing_docs)]

#[cfg(feature = "count-allocs")]
pub mod count_alloc;
pub mod fxhash;
mod shared;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use shared::SharedBytes;
