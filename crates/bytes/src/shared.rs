//! The shared-slice type itself. This module is `forbid(unsafe_code)`:
//! all sharing is plain `Arc` reference counting.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheaply cloneable, immutable view into a reference-counted byte
/// buffer.
///
/// A `SharedBytes` is an `Arc<Vec<u8>>` plus an `(offset, len)` window.
/// [`slice`](Self::slice), [`split_to`](Self::split_to) and `clone` are
/// O(1): they bump the reference count and adjust the window, never
/// touching the bytes. The backing buffer is freed when the last view
/// into it drops.
///
/// The buffer is immutable after construction — there is no `&mut [u8]`
/// access — which is what makes sharing across cloned netsim packets,
/// wire taps and retransmission queues safe.
///
/// # Examples
///
/// ```
/// use h2priv_bytes::SharedBytes;
///
/// let whole = SharedBytes::from_vec(vec![1, 2, 3, 4, 5]);
/// let mid = whole.slice(1..4);
/// assert_eq!(mid, [2, 3, 4][..]);
/// assert_eq!(&mid[..2], &[2, 3]);
///
/// let mut rest = whole.clone();
/// let head = rest.split_to(2);
/// assert_eq!(head, [1, 2][..]);
/// assert_eq!(rest, [3, 4, 5][..]);
/// ```
#[derive(Clone)]
pub struct SharedBytes {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

/// The shared backing buffer of every empty `SharedBytes`, so that
/// constructing one (pure ACK segments do, per received segment) never
/// allocates.
fn empty_buf() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

impl SharedBytes {
    /// Creates an empty slice. Allocation-free.
    pub fn new() -> SharedBytes {
        SharedBytes {
            buf: empty_buf(),
            off: 0,
            len: 0,
        }
    }

    /// Wraps an owned buffer without copying it (the `Vec` is moved into
    /// the reference count).
    pub fn from_vec(vec: Vec<u8>) -> SharedBytes {
        if vec.is_empty() {
            return SharedBytes::new();
        }
        let len = vec.len();
        SharedBytes {
            buf: Arc::new(vec),
            off: 0,
            len,
        }
    }

    /// Copies a borrowed slice into a fresh shared buffer. This is the
    /// *one* deliberate copy at the boundary between borrowed and shared
    /// bytes; everything downstream of it is copy-free.
    pub fn copy_from_slice(data: &[u8]) -> SharedBytes {
        SharedBytes::from_vec(data.to_vec())
    }

    /// A `len`-byte all-zeros view, allocation-free for lengths up to the
    /// shared zero page (64 KiB — larger than any frame payload the model
    /// emits). Consumers that only need a *length* with opaque contents
    /// (an HTTP/2 receiver delivering body bytes the application never
    /// reads) get a real, safely readable slice without a per-call
    /// allocation or copy.
    pub fn zeros(len: usize) -> SharedBytes {
        const ZERO_PAGE_LEN: usize = 1 << 16;
        if len == 0 {
            return SharedBytes::new();
        }
        if len > ZERO_PAGE_LEN {
            return SharedBytes::from_vec(vec![0; len]);
        }
        static ZEROS: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
        SharedBytes {
            buf: ZEROS
                .get_or_init(|| Arc::new(vec![0; ZERO_PAGE_LEN]))
                .clone(),
            off: 0,
            len,
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Returns a sub-view of `range` (relative to this view), sharing the
    /// same backing buffer. O(1), allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> SharedBytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for SharedBytes of len {}",
            self.len
        );
        SharedBytes {
            buf: Arc::clone(&self.buf),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Splits the view at `at`: returns `[0, at)` and leaves `[at, len)`
    /// in `self`. Both halves share the backing buffer. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> SharedBytes {
        let head = self.slice(..at);
        self.off += at;
        self.len -= at;
        head
    }

    /// Copies the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Recovers the backing `Vec` if this view is the last reference to
    /// it, returning `self` unchanged otherwise. The recovered `Vec` is
    /// the *whole* backing buffer regardless of the view's window — the
    /// caller is expected to `clear()` and reuse its capacity (buffer
    /// recycling), not to read from it.
    pub fn try_into_vec(self) -> Result<Vec<u8>, SharedBytes> {
        let SharedBytes { buf, off, len } = self;
        match Arc::try_unwrap(buf) {
            Ok(vec) => Ok(vec),
            Err(buf) => Err(SharedBytes { buf, off, len }),
        }
    }
}

impl Default for SharedBytes {
    fn default() -> Self {
        SharedBytes::new()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for SharedBytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(vec: Vec<u8>) -> SharedBytes {
        SharedBytes::from_vec(vec)
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(data: &[u8]) -> SharedBytes {
        SharedBytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<&[u8; N]> for SharedBytes {
    fn from(data: &[u8; N]) -> SharedBytes {
        SharedBytes::copy_from_slice(data)
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &SharedBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl Hash for SharedBytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<SharedBytes> for [u8] {
    fn eq(&self, other: &SharedBytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<&[u8]> for SharedBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for SharedBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<SharedBytes> for Vec<u8> {
    fn eq(&self, other: &SharedBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for SharedBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_views() {
        let e = SharedBytes::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e, SharedBytes::default());
        assert_eq!(e.as_slice(), &[] as &[u8]);
        assert_eq!(SharedBytes::from_vec(Vec::new()), e);
    }

    #[test]
    fn from_vec_views_all_bytes() {
        let b = SharedBytes::from_vec(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b, [1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn slicing_shares_the_buffer() {
        let whole = SharedBytes::from_vec((0..100).collect());
        let a = whole.slice(10..20);
        let b = a.slice(5..);
        assert_eq!(a.as_slice(), (10..20).collect::<Vec<u8>>().as_slice());
        assert_eq!(b.as_slice(), (15..20).collect::<Vec<u8>>().as_slice());
        // All three views point into one allocation.
        assert!(Arc::ptr_eq(&whole.buf, &a.buf));
        assert!(Arc::ptr_eq(&whole.buf, &b.buf));
    }

    #[test]
    fn slice_range_forms() {
        let b = SharedBytes::from_vec(vec![0, 1, 2, 3, 4]);
        assert_eq!(b.slice(..), [0, 1, 2, 3, 4]);
        assert_eq!(b.slice(2..), [2, 3, 4]);
        assert_eq!(b.slice(..3), [0, 1, 2]);
        assert_eq!(b.slice(1..=3), [1, 2, 3]);
        assert!(b.slice(5..).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        SharedBytes::from_vec(vec![1, 2]).slice(..3);
    }

    #[test]
    fn split_to_partitions() {
        let mut b = SharedBytes::from_vec(vec![1, 2, 3, 4]);
        let head = b.split_to(1);
        assert_eq!(head, [1]);
        assert_eq!(b, [2, 3, 4]);
        let rest = b.split_to(3);
        assert_eq!(rest, [2, 3, 4]);
        assert!(b.is_empty());
    }

    #[test]
    fn equality_and_hash_follow_content() {
        use std::collections::hash_map::DefaultHasher;
        let a = SharedBytes::from_vec(vec![9, 9]).slice(1..);
        let b = SharedBytes::from_vec(vec![0, 9]).slice(1..);
        assert_eq!(a, b);
        assert_eq!(a, [9]);
        assert_eq!(a, vec![9u8]);
        assert_eq!(vec![9u8], a);
        assert_eq!(a, [9u8][..]);
        let hash = |x: &SharedBytes| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn deref_gives_slice_methods() {
        let b = SharedBytes::from_vec(b"hello world".to_vec());
        assert!(b.starts_with(b"hello"));
        assert_eq!(&b[6..], b"world");
        fn takes_slice(s: &[u8]) -> usize {
            s.len()
        }
        assert_eq!(takes_slice(&b), 11);
    }

    #[test]
    fn debug_formats_as_bytes() {
        let b = SharedBytes::from_vec(vec![1, 2]);
        assert_eq!(format!("{b:?}"), "[1, 2]");
    }

    #[test]
    fn zeros_shares_one_page_and_spills_past_it() {
        assert!(SharedBytes::zeros(0).is_empty());
        let a = SharedBytes::zeros(5);
        assert_eq!(a, [0, 0, 0, 0, 0]);
        // Page-sized views alias the same backing allocation...
        let b = SharedBytes::zeros(1 << 16);
        assert_eq!(b.len(), 1 << 16);
        assert!(Arc::ptr_eq(&a.buf, &b.buf));
        assert!(b.iter().all(|&x| x == 0));
        // ...and slicing a zeros view stays on it, while an over-page
        // request falls back to a private buffer.
        let c = a.slice(1..4);
        assert!(Arc::ptr_eq(&c.buf, &b.buf));
        let big = SharedBytes::zeros((1 << 16) + 1);
        assert_eq!(big.len(), (1 << 16) + 1);
        assert!(!Arc::ptr_eq(&big.buf, &b.buf));
        assert!(big.iter().all(|&x| x == 0));
    }
}
