//! HTTP/2 flow-control ledgers, stream-state legality and HPACK sync.
//!
//! One checker attaches to each endpoint and watches both plaintext frame
//! streams from that endpoint's vantage: the bytes it seals (outbound,
//! observed before TLS) and the bytes it decrypts (inbound, observed after
//! TLS). From those two streams alone — no access to `H2Connection`
//! internals — the checker maintains an independent double-entry ledger of
//! every flow-control window and replays the stream state machine:
//!
//! * a `DATA` frame the endpoint *sends* must fit in both the connection
//!   and the stream send window as advertised by the peer (windows may go
//!   negative only through a `SETTINGS` shrink, and then the sender must
//!   stop — so sending past the window is always a violation, RFC 7540
//!   §6.9.2);
//! * a `DATA` frame the endpoint *receives* must fit in the windows this
//!   endpoint advertised, **including** frames for streams it has already
//!   reset — their connection-window debit happens exactly once, which is
//!   what keeps the §IV-D `RST_STREAM` flush from corrupting the ledger;
//! * `WINDOW_UPDATE` increments must be nonzero and never lift a window
//!   past 2^31−1;
//! * frames must be legal for the stream's state (no `DATA` before
//!   `HEADERS`, none after `END_STREAM` from the same sender, no
//!   `WINDOW_UPDATE` for idle streams);
//! * every `HEADERS` block must HPACK-decode against a shadow decoder, and
//!   declared dynamic-table sizes must respect the receiving side's
//!   advertised `SETTINGS_HEADER_TABLE_SIZE` (table-size sync, RFC 7541
//!   §4.2).

use crate::{Layer, ViolationSink};
use h2priv_http2::{
    hpack, pad_overhead, Frame, FrameDecoder, SettingId, StreamId, DEFAULT_WINDOW, MAX_WINDOW,
};
use h2priv_netsim::SimTime;
use std::collections::HashMap;

/// Per-stream ledger entry.
struct LedgerStream {
    /// Bytes we may still send on this stream (peer's advertised window).
    send: i64,
    /// Bytes the peer may still send to us (our advertised window).
    recv: i64,
    /// We sent END_STREAM.
    local_done: bool,
    /// Peer sent END_STREAM.
    remote_done: bool,
    /// Either side sent RST_STREAM: frames still in flight are tolerated
    /// (and connection-accounted), but nothing new may originate here.
    reset: bool,
}

/// One endpoint's conformance ledger.
pub struct H2LedgerChecker {
    label: &'static str,
    sink: ViolationSink,
    sent: FrameDecoder,
    recv: FrameDecoder,
    /// Connection-level send window (peer's view of what we may send).
    conn_send: i64,
    /// Connection-level receive window (what we advertised).
    conn_recv: i64,
    streams: HashMap<StreamId, LedgerStream>,
    /// initial_window_size the peer advertised (initializes `send`).
    peer_initial: i64,
    /// initial_window_size we advertised (initializes `recv`).
    local_initial: i64,
    /// SETTINGS_HEADER_TABLE_SIZE the peer advertised: caps what *our*
    /// encoder may declare.
    peer_table_cap: usize,
    /// SETTINGS_HEADER_TABLE_SIZE we advertised: caps the peer's encoder.
    local_table_cap: usize,
    /// SETTINGS_MAX_FRAME_SIZE the peer advertised: bounds what we emit
    /// (padding included).
    peer_max_frame: usize,
    /// SETTINGS_MAX_FRAME_SIZE we advertised: bounds what the peer emits.
    local_max_frame: usize,
    /// Shadow decoder for header blocks we send.
    hpack_tx: hpack::Decoder,
    /// Shadow decoder for header blocks we receive.
    hpack_rx: hpack::Decoder,
}

impl H2LedgerChecker {
    /// Creates a checker for one endpoint. `is_client` selects which of
    /// the two byte streams carries the connection preface.
    pub fn new(label: &'static str, is_client: bool, sink: ViolationSink) -> Self {
        H2LedgerChecker {
            label,
            sink,
            sent: FrameDecoder::new(is_client),
            recv: FrameDecoder::new(!is_client),
            conn_send: DEFAULT_WINDOW as i64,
            conn_recv: DEFAULT_WINDOW as i64,
            streams: HashMap::new(),
            peer_initial: DEFAULT_WINDOW as i64,
            local_initial: DEFAULT_WINDOW as i64,
            peer_table_cap: 4_096,
            local_table_cap: 4_096,
            peer_max_frame: h2priv_http2::DEFAULT_MAX_FRAME_SIZE,
            local_max_frame: h2priv_http2::DEFAULT_MAX_FRAME_SIZE,
            hpack_tx: hpack::Decoder::new(),
            hpack_rx: hpack::Decoder::new(),
        }
    }

    /// RFC-legality of an emitted/observed pad schedule: the padded payload
    /// (content + pad-length byte + padding) must fit the receiving side's
    /// advertised `SETTINGS_MAX_FRAME_SIZE`. Pad lengths >= payload length
    /// and non-zero pad octets never reach this check — the decoders above
    /// reject those frames outright (PROTOCOL_ERROR), surfacing as
    /// `frame-decode-*` violations.
    fn check_pad_legal(
        &self,
        dir: &str,
        stream_id: StreamId,
        content_len: usize,
        pad: u8,
        max_frame: usize,
        now: SimTime,
    ) {
        let total = content_len + 1 + pad as usize;
        if total > max_frame {
            self.sink.report(
                Layer::Http2,
                "pad-exceeds-max-frame",
                now,
                format!(
                    "{}: {dir} padded payload {total}B on {stream_id} > SETTINGS_MAX_FRAME_SIZE {max_frame}",
                    self.label
                ),
            );
        }
    }

    /// Feeds plaintext bytes this endpoint just sealed for the peer.
    pub fn on_sent(&mut self, bytes: &[u8], now: SimTime) {
        self.sent.push(bytes);
        loop {
            match self.sent.next_frame() {
                Ok(Some(frame)) => self.handle_sent(frame, now),
                Ok(None) => break,
                Err(e) => {
                    self.sink.report(
                        Layer::Http2,
                        "frame-decode-sent",
                        now,
                        format!("{}: {e:?}", self.label),
                    );
                    return;
                }
            }
        }
    }

    /// Feeds plaintext bytes this endpoint just decrypted from the peer.
    pub fn on_received(&mut self, bytes: &[u8], now: SimTime) {
        self.recv.push(bytes);
        loop {
            match self.recv.next_frame() {
                Ok(Some(frame)) => self.handle_received(frame, now),
                Ok(None) => break,
                Err(e) => {
                    self.sink.report(
                        Layer::Http2,
                        "frame-decode-recv",
                        now,
                        format!("{}: {e:?}", self.label),
                    );
                    return;
                }
            }
        }
    }

    fn entry(
        streams: &mut HashMap<StreamId, LedgerStream>,
        id: StreamId,
        send_init: i64,
        recv_init: i64,
    ) -> &mut LedgerStream {
        streams.entry(id).or_insert(LedgerStream {
            send: send_init,
            recv: recv_init,
            local_done: false,
            remote_done: false,
            reset: false,
        })
    }

    // ---- outbound -------------------------------------------------------

    fn handle_sent(&mut self, frame: Frame, now: SimTime) {
        let sink = self.sink.clone();
        let label = self.label;
        let report = |rule: &'static str, detail: String| {
            sink.report(Layer::Http2, rule, now, format!("{label}: {detail}"));
        };
        match frame {
            Frame::Headers {
                stream_id,
                end_stream,
                header_block,
                pad,
            } => {
                if let Some(p) = pad {
                    self.check_pad_legal(
                        "sent",
                        stream_id,
                        header_block.len(),
                        p,
                        self.peer_max_frame,
                        now,
                    );
                }
                if let Err(e) = self.hpack_tx.decode(&header_block) {
                    report("hpack-desync-sent", format!("stream {stream_id}: {e}"));
                }
                if let Some(update) = self.hpack_tx.max_size_update() {
                    if update > self.peer_table_cap {
                        report(
                            "hpack-table-size",
                            format!(
                                "declared table {update}B > peer cap {}B",
                                self.peer_table_cap
                            ),
                        );
                    }
                }
                let known = self.streams.contains_key(&stream_id);
                let entry = Self::entry(
                    &mut self.streams,
                    stream_id,
                    self.peer_initial,
                    self.local_initial,
                );
                // HEADERS on a stream the *peer* reset is the inherent
                // HPACK race, not a breach: a block encoded before the
                // RST_STREAM was processed cannot be dropped from the send
                // queue without desynchronizing the connection-wide
                // compression context (RFC 7541 (4.3)), so it legitimately
                // reaches the wire and the peer decodes-then-discards it.
                // HEADERS after our own END_STREAM has no such excuse.
                if known && entry.local_done && !entry.reset {
                    report(
                        "headers-after-close",
                        format!("HEADERS sent on ended stream {stream_id}"),
                    );
                } else if end_stream {
                    entry.local_done = true;
                }
            }
            Frame::Data {
                stream_id,
                end_stream,
                data,
                pad,
            } => {
                if let Some(p) = pad {
                    self.check_pad_legal(
                        "sent",
                        stream_id,
                        data.len(),
                        p,
                        self.peer_max_frame,
                        now,
                    );
                }
                // RFC 7540 §6.9.1: the whole payload — pad-length byte and
                // padding included — debits flow-control windows on both
                // ledgers, or padded senders would double-credit.
                let len = (data.len() + pad_overhead(pad)) as i64;
                if self.conn_send < len {
                    report(
                        "conn-send-window",
                        format!(
                            "DATA {len}B on {stream_id} exceeds connection send window {}",
                            self.conn_send
                        ),
                    );
                }
                self.conn_send -= len;
                match self.streams.get_mut(&stream_id) {
                    None => report(
                        "data-before-headers",
                        format!("DATA sent on idle stream {stream_id}"),
                    ),
                    Some(entry) => {
                        if entry.local_done || entry.reset {
                            let state = if entry.reset { "reset" } else { "ended" };
                            report(
                                "data-after-close",
                                format!("DATA sent on {state} stream {stream_id}"),
                            );
                        }
                        if entry.send < len {
                            report(
                                "stream-send-window",
                                format!(
                                    "DATA {len}B exceeds stream {stream_id} send window {}",
                                    entry.send
                                ),
                            );
                        }
                        entry.send -= len;
                        if end_stream {
                            entry.local_done = true;
                        }
                    }
                }
            }
            Frame::WindowUpdate {
                stream_id,
                increment,
            } => {
                // A WINDOW_UPDATE we send raises what the peer may send us.
                if increment == 0 {
                    report(
                        "window-update-zero",
                        format!("zero increment sent for {stream_id}"),
                    );
                    return;
                }
                if stream_id == StreamId::CONNECTION {
                    self.conn_recv += increment as i64;
                    if self.conn_recv > MAX_WINDOW {
                        report(
                            "window-overflow",
                            format!("connection recv window grew to {}", self.conn_recv),
                        );
                    }
                } else if let Some(entry) = self.streams.get_mut(&stream_id) {
                    entry.recv += increment as i64;
                    if entry.recv > MAX_WINDOW {
                        let grown = entry.recv;
                        report(
                            "window-overflow",
                            format!("stream {stream_id} recv window grew to {grown}"),
                        );
                    }
                } else {
                    report(
                        "window-update-idle",
                        format!("WINDOW_UPDATE sent for idle stream {stream_id}"),
                    );
                }
            }
            Frame::RstStream { stream_id, .. } => {
                Self::entry(
                    &mut self.streams,
                    stream_id,
                    self.peer_initial,
                    self.local_initial,
                )
                .reset = true;
            }
            Frame::Settings { ack, settings } => {
                if !ack {
                    self.apply_settings(&settings, true);
                }
            }
            Frame::Ping { .. } | Frame::GoAway { .. } | Frame::Priority { .. } => {}
        }
    }

    // ---- inbound --------------------------------------------------------

    fn handle_received(&mut self, frame: Frame, now: SimTime) {
        let sink = self.sink.clone();
        let label = self.label;
        let report = |rule: &'static str, detail: String| {
            sink.report(Layer::Http2, rule, now, format!("{label}: {detail}"));
        };
        match frame {
            Frame::Headers {
                stream_id,
                end_stream,
                header_block,
                pad,
            } => {
                if let Some(p) = pad {
                    self.check_pad_legal(
                        "recv",
                        stream_id,
                        header_block.len(),
                        p,
                        self.local_max_frame,
                        now,
                    );
                }
                // Shadow-decode every block — including blocks for streams
                // we reset. The compression context is connection-wide;
                // skipping one block desynchronizes everything after it.
                if let Err(e) = self.hpack_rx.decode(&header_block) {
                    report("hpack-desync-recv", format!("stream {stream_id}: {e}"));
                }
                if self.hpack_rx.dynamic_size() > self.local_table_cap {
                    report(
                        "hpack-table-size",
                        format!(
                            "peer table {}B > our cap {}B",
                            self.hpack_rx.dynamic_size(),
                            self.local_table_cap
                        ),
                    );
                }
                let known = self.streams.contains_key(&stream_id);
                let entry = Self::entry(
                    &mut self.streams,
                    stream_id,
                    self.peer_initial,
                    self.local_initial,
                );
                if known && entry.remote_done && !entry.reset {
                    report(
                        "headers-after-end-stream",
                        format!("HEADERS received on ended stream {stream_id}"),
                    );
                } else if end_stream {
                    entry.remote_done = true;
                }
            }
            Frame::Data {
                stream_id,
                end_stream,
                data,
                pad,
            } => {
                if let Some(p) = pad {
                    self.check_pad_legal(
                        "recv",
                        stream_id,
                        data.len(),
                        p,
                        self.local_max_frame,
                        now,
                    );
                }
                // The padded total debits the windows (RFC 7540 §6.9.1),
                // exactly as on the send side.
                let len = (data.len() + pad_overhead(pad)) as i64;
                // Connection-level debit is unconditional: DATA for a
                // stream we reset was still in flight against the
                // connection window and must be accounted exactly once.
                if self.conn_recv < len {
                    report(
                        "conn-recv-window",
                        format!(
                            "peer DATA {len}B on {stream_id} overran connection window {}",
                            self.conn_recv
                        ),
                    );
                }
                self.conn_recv -= len;
                match self.streams.get_mut(&stream_id) {
                    None => report(
                        "data-on-idle",
                        format!("DATA received on idle stream {stream_id}"),
                    ),
                    Some(entry) => {
                        if entry.remote_done && !entry.reset {
                            report(
                                "data-after-end-stream",
                                format!("DATA received on ended stream {stream_id}"),
                            );
                        }
                        if entry.recv < len {
                            report(
                                "stream-recv-window",
                                format!(
                                    "peer DATA {len}B overran stream {stream_id} window {}",
                                    entry.recv
                                ),
                            );
                        }
                        entry.recv -= len;
                        if end_stream {
                            entry.remote_done = true;
                        }
                    }
                }
            }
            Frame::WindowUpdate {
                stream_id,
                increment,
            } => {
                if increment == 0 {
                    report(
                        "window-update-zero",
                        format!("zero increment received for {stream_id}"),
                    );
                    return;
                }
                if stream_id == StreamId::CONNECTION {
                    self.conn_send += increment as i64;
                    if self.conn_send > MAX_WINDOW {
                        report(
                            "window-overflow",
                            format!("connection send window grew to {}", self.conn_send),
                        );
                    }
                } else if let Some(entry) = self.streams.get_mut(&stream_id) {
                    entry.send += increment as i64;
                    if entry.send > MAX_WINDOW {
                        let grown = entry.send;
                        report(
                            "window-overflow",
                            format!("stream {stream_id} send window grew to {grown}"),
                        );
                    }
                }
                // WINDOW_UPDATE for a stream we have no record of can race
                // our own RST teardown; unlike DATA it carries no payload
                // to account, so it is tolerated.
            }
            Frame::RstStream { stream_id, .. } => {
                Self::entry(
                    &mut self.streams,
                    stream_id,
                    self.peer_initial,
                    self.local_initial,
                )
                .reset = true;
            }
            Frame::Settings { ack, settings } => {
                if !ack {
                    self.apply_settings(&settings, false);
                }
            }
            Frame::Ping { .. } | Frame::GoAway { .. } | Frame::Priority { .. } => {}
        }
    }

    /// Applies a SETTINGS frame to the ledger. `sent_by_us` selects which
    /// side's windows it governs: settings we send size our *receive*
    /// windows; settings the peer sends size our *send* windows
    /// (RFC 7540 §6.9.2: changed initial windows adjust open streams).
    fn apply_settings(&mut self, settings: &[(SettingId, u32)], sent_by_us: bool) {
        for &(id, value) in settings {
            match id {
                SettingId::InitialWindowSize => {
                    if sent_by_us {
                        let delta = value as i64 - self.local_initial;
                        self.local_initial = value as i64;
                        for entry in self.streams.values_mut() {
                            entry.recv += delta;
                        }
                    } else {
                        let delta = value as i64 - self.peer_initial;
                        self.peer_initial = value as i64;
                        for entry in self.streams.values_mut() {
                            entry.send += delta;
                        }
                    }
                }
                SettingId::HeaderTableSize => {
                    if sent_by_us {
                        self.local_table_cap = value as usize;
                    } else {
                        self.peer_table_cap = value as usize;
                    }
                }
                SettingId::MaxFrameSize => {
                    // Our advertised limit bounds inbound frames; the
                    // peer's bounds what we send. Teach the shadow
                    // decoders so oversized (incl. over-padded) frames
                    // surface as decode violations.
                    if sent_by_us {
                        self.local_max_frame = value as usize;
                        self.recv.set_max_frame_size(value as usize);
                    } else {
                        self.peer_max_frame = value as usize;
                        self.sent.set_max_frame_size(value as usize);
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_http2::{encode_frame, ErrorCode, CLIENT_PREFACE};

    fn data(stream: u32, len: usize, end: bool) -> Vec<u8> {
        data_padded(stream, len, end, None)
    }

    fn data_padded(stream: u32, len: usize, end: bool, pad: Option<u8>) -> Vec<u8> {
        encode_frame(&Frame::Data {
            stream_id: StreamId(stream),
            end_stream: end,
            data: h2priv_bytes::SharedBytes::from_vec(vec![0u8; len]),
            pad,
        })
    }

    fn headers(stream: u32, end: bool) -> Vec<u8> {
        let block = hpack::Encoder::new().encode(&[hpack::HeaderField::new(":method", "GET")]);
        encode_frame(&Frame::Headers {
            stream_id: StreamId(stream),
            end_stream: end,
            header_block: block,
            pad: None,
        })
    }

    fn checker() -> (H2LedgerChecker, ViolationSink) {
        let sink = ViolationSink::new();
        let mut c = H2LedgerChecker::new("server", false, sink.clone());
        // The server's inbound stream starts with the client preface.
        c.on_received(CLIENT_PREFACE, SimTime::ZERO);
        (c, sink)
    }

    #[test]
    fn clean_request_response_is_silent() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, true), SimTime::ZERO);
        c.on_sent(&headers(1, false), SimTime::ZERO);
        c.on_sent(&data(1, 1000, true), SimTime::ZERO);
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
    }

    #[test]
    fn sending_past_connection_window_is_flagged() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, true), SimTime::ZERO);
        c.on_sent(&headers(1, false), SimTime::ZERO);
        // Default window is 65 535: five 16 000-byte frames overrun it.
        for _ in 0..5 {
            c.on_sent(&data(1, 16_000, false), SimTime::ZERO);
        }
        let violations = sink.take();
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "conn-send-window" || v.rule == "stream-send-window"),
            "violations: {violations:?}"
        );
    }

    #[test]
    fn data_after_end_stream_is_flagged() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, true), SimTime::ZERO);
        c.on_received(&data(1, 10, false), SimTime::ZERO);
        let violations = sink.take();
        assert!(
            violations.iter().any(|v| v.rule == "data-after-end-stream"),
            "violations: {violations:?}"
        );
    }

    #[test]
    fn reset_stream_data_still_debits_connection_window_once() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, true), SimTime::ZERO);
        c.on_sent(&headers(1, false), SimTime::ZERO);
        // We reset the stream; a DATA frame racing the reset arrives after.
        c.on_sent(
            &encode_frame(&Frame::RstStream {
                stream_id: StreamId(1),
                error_code: ErrorCode::Cancel,
            }),
            SimTime::ZERO,
        );
        let before = c.conn_recv;
        c.on_received(&data(1, 500, false), SimTime::ZERO);
        assert_eq!(c.conn_recv, before - 500, "debited exactly once");
        assert!(sink.is_empty(), "in-flight DATA after our RST is legal");
    }

    #[test]
    fn headers_after_peer_reset_is_tolerated() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, false), SimTime::ZERO);
        // Peer resets the stream while our response HEADERS block is
        // already encoded and queued: it must still go out (dropping it
        // would desync the shared HPACK context), and that is not a
        // violation.
        c.on_received(
            &encode_frame(&Frame::RstStream {
                stream_id: StreamId(1),
                error_code: ErrorCode::Cancel,
            }),
            SimTime::ZERO,
        );
        c.on_sent(&headers(1, true), SimTime::ZERO);
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
    }

    #[test]
    fn headers_after_own_end_stream_is_flagged() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, true), SimTime::ZERO);
        c.on_sent(&headers(1, true), SimTime::ZERO);
        c.on_sent(&headers(1, true), SimTime::ZERO);
        assert!(
            sink.take().iter().any(|v| v.rule == "headers-after-close"),
            "second HEADERS after our END_STREAM must be flagged"
        );
    }

    #[test]
    fn zero_window_update_is_flagged() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, true), SimTime::ZERO);
        c.on_received(
            &encode_frame(&Frame::WindowUpdate {
                stream_id: StreamId(1),
                increment: 0,
            }),
            SimTime::ZERO,
        );
        assert!(sink.take().iter().any(|v| v.rule == "window-update-zero"));
    }

    #[test]
    fn padded_data_debits_full_payload_both_directions() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, false), SimTime::ZERO);
        c.on_sent(&headers(1, false), SimTime::ZERO);
        let send_before = c.conn_send;
        // 100 content bytes + 1 pad-length byte + 29 pad = 130 flow bytes.
        c.on_sent(&data_padded(1, 100, false, Some(29)), SimTime::ZERO);
        assert_eq!(c.conn_send, send_before - 130, "padding debits the ledger");
        let recv_before = c.conn_recv;
        c.on_received(&data_padded(1, 40, false, Some(9)), SimTime::ZERO);
        assert_eq!(c.conn_recv, recv_before - 50);
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
    }

    #[test]
    fn padded_overrun_hidden_by_stripping_is_caught() {
        // A padded sender that only accounted the content bytes would
        // overrun the window by the padding overhead: five frames of
        // 13 000 content + 255 pad (13 256 flow bytes each) blow the
        // 65 535-byte window even though 5 × 13 000 alone would fit.
        let (mut c, sink) = checker();
        c.on_received(&headers(1, true), SimTime::ZERO);
        c.on_sent(&headers(1, false), SimTime::ZERO);
        for _ in 0..5 {
            c.on_sent(&data_padded(1, 13_000, false, Some(255)), SimTime::ZERO);
        }
        let violations = sink.take();
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "conn-send-window" || v.rule == "stream-send-window"),
            "violations: {violations:?}"
        );
    }

    #[test]
    fn illegal_pad_length_is_a_decode_violation() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, true), SimTime::ZERO);
        // Hand-built PADDED DATA with pad_len == payload length (RFC 7540
        // §6.1 PROTOCOL_ERROR): [len=3][DATA][PADDED][stream 1] 3,0,0.
        let raw = [0, 0, 3, 0x0, 0x8, 0, 0, 0, 1, 3, 0, 0];
        c.on_received(&raw, SimTime::ZERO);
        assert!(
            sink.take().iter().any(|v| v.rule == "frame-decode-recv"),
            "illegal pad length must surface as a decode violation"
        );
    }

    #[test]
    fn non_zero_padding_is_a_decode_violation() {
        let (mut c, sink) = checker();
        c.on_received(&headers(1, true), SimTime::ZERO);
        let raw = [0, 0, 4, 0x0, 0x8, 0, 0, 0, 1, 2, 9, 0xAB, 0xCD];
        c.on_received(&raw, SimTime::ZERO);
        assert!(
            sink.take().iter().any(|v| v.rule == "frame-decode-recv"),
            "non-zero pad octets must surface as a decode violation"
        );
    }

    #[test]
    fn preface_is_consumed_for_client_streams() {
        let sink = ViolationSink::new();
        let mut c = H2LedgerChecker::new("client", true, sink.clone());
        let mut bytes = CLIENT_PREFACE.to_vec();
        bytes.extend_from_slice(&headers(1, true));
        c.on_sent(&bytes, SimTime::ZERO);
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
    }
}
