//! Cross-layer protocol conformance oracle.
//!
//! Sans-IO invariant checkers that attach to the existing netsim taps and
//! testkit hosts and validate, at every event, that the TCP, TLS and
//! HTTP/2 substrates obey the RFC rules the paper's attack depends on:
//!
//! * **TCP** ([`tcp::TcpEndpointChecker`], wire checks in
//!   [`tap::ConformanceTap`]) — seq/ack monotonicity, acks never cover
//!   unsent data, cwnd/ssthresh floors, retransmit-only-unacked, and
//!   Karn's sampling rule. The §IV-C cwnd contraction is only meaningful
//!   if congestion accounting is right.
//! * **TLS** ([`tls::TlsDirChecker`]) — record headers tile each
//!   direction's byte stream exactly, lengths stay within
//!   `MAX_CIPHERTEXT`, and the explicit per-record nonce is a gapless
//!   sequence. The monitor's record-counting heuristics (§V) assume this.
//! * **HTTP/2** ([`h2::H2LedgerChecker`]) — connection and stream
//!   flow-control ledgers never go negative, WINDOW_UPDATE never
//!   overflows, DATA in flight across `RST_STREAM` is accounted exactly
//!   once (the §IV-D flush), stream-state legality, and HPACK
//!   dynamic-table-size sync.
//!
//! Checkers never mutate or perturb the stacks they watch: they observe
//! wire bytes and public inspector state only, and report into a shared
//! [`ViolationSink`]. Scenarios assert the sink stays empty.

pub mod h2;
pub mod tap;
pub mod tcp;
pub mod tls;

pub use h2::H2LedgerChecker;
pub use tap::ConformanceTap;
pub use tcp::TcpEndpointChecker;

use h2priv_netsim::SimTime;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Which protocol layer a violation was detected in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// TCP (RFC 793 / 5681 / 6298).
    Tcp,
    /// TLS record layer.
    Tls,
    /// HTTP/2 framing and flow control (RFC 7540 / 7541).
    Http2,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layer::Tcp => "tcp",
            Layer::Tls => "tls",
            Layer::Http2 => "h2",
        })
    }
}

/// One detected invariant breach.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Layer the rule belongs to.
    pub layer: Layer,
    /// Short stable rule identifier, e.g. `"ack-monotonic"`.
    pub rule: &'static str,
    /// Simulation time at which the breach was observed.
    pub time: SimTime,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}/{}: {}",
            self.time, self.layer, self.rule, self.detail
        )
    }
}

/// Stored violations are capped so a systemic breach (one rule tripping on
/// every segment of a long transfer) cannot balloon memory; the total
/// count keeps climbing past the cap.
const MAX_STORED: usize = 1024;

/// Shared collector the checkers report into.
///
/// Cloning is cheap (an `Rc` handle); the scenario keeps one handle and
/// gives one to every checker it installs.
#[derive(Clone, Default)]
pub struct ViolationSink {
    inner: Rc<RefCell<SinkState>>,
}

#[derive(Default)]
struct SinkState {
    stored: Vec<Violation>,
    total: u64,
}

impl ViolationSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one violation.
    pub fn report(&self, layer: Layer, rule: &'static str, time: SimTime, detail: String) {
        let mut s = self.inner.borrow_mut();
        s.total += 1;
        if s.stored.len() < MAX_STORED {
            s.stored.push(Violation {
                layer,
                rule,
                time,
                detail,
            });
        }
    }

    /// Total violations reported (including any past the storage cap).
    pub fn total(&self) -> u64 {
        self.inner.borrow().total
    }

    /// True if nothing has been reported.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Takes the stored violations, leaving the sink empty.
    pub fn take(&self) -> Vec<Violation> {
        let mut s = self.inner.borrow_mut();
        s.total = 0;
        std::mem::take(&mut s.stored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_counts_past_storage_cap() {
        let sink = ViolationSink::new();
        for i in 0..(MAX_STORED as u64 + 10) {
            sink.report(Layer::Tcp, "test", SimTime::ZERO, format!("v{i}"));
        }
        assert_eq!(sink.total(), MAX_STORED as u64 + 10);
        let stored = sink.take();
        assert_eq!(stored.len(), MAX_STORED);
        assert!(sink.is_empty());
    }

    #[test]
    fn violation_display_is_compact() {
        let v = Violation {
            layer: Layer::Http2,
            rule: "conn-send-negative",
            time: SimTime::ZERO,
            detail: "window -3".into(),
        };
        let s = format!("{v}");
        assert!(s.contains("h2/conn-send-negative"), "{s}");
    }
}
