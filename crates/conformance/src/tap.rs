//! Mid-path wire checker: a [`Middlebox`] that validates every forwarded
//! segment without perturbing it.
//!
//! The tap sits at the gateway — the adversary's own vantage point — and
//! checks the invariants that are decidable from the wire: TCP sequence
//! and acknowledgment sanity per direction, and TLS record framing via
//! [`TlsDirChecker`]. (Sender-private invariants like retransmit-only-
//! unacked live in [`crate::TcpEndpointChecker`] instead: an ACK observed
//! mid-path may still be in flight toward the sender, so they are not
//! wire-decidable.)
//!
//! Ordering makes the ack-vs-sent cross-check sound at this vantage: any
//! data a receiver acknowledges passed the tap before reaching it, and its
//! ACK passes the tap after — so at the tap, an ACK may never cover bytes
//! the tap has not already seen travel the other way.

use crate::tls::TlsDirChecker;
use crate::{Layer, ViolationSink};
use h2priv_netsim::{Dir, MbContext, Middlebox, Packet, Verdict};
use h2priv_tcp::{Seq, TcpSegment};

/// Per-direction wire state.
struct DirState {
    label: &'static str,
    /// Sender's ISS, learned from its SYN.
    iss: Option<Seq>,
    /// One past the highest sequence-space byte seen (seq + seq_len).
    max_seq_end: Option<Seq>,
    /// Highest acknowledgment number seen.
    max_ack: Option<Seq>,
    tls: TlsDirChecker,
}

impl DirState {
    fn new(label: &'static str) -> Self {
        DirState {
            label,
            iss: None,
            max_seq_end: None,
            max_ack: None,
            tls: TlsDirChecker::new(label),
        }
    }
}

/// Conformance middlebox; install last in the gateway chain so it observes
/// exactly the traffic that survives the adversary.
pub struct ConformanceTap {
    sink: ViolationSink,
    l2r: DirState,
    r2l: DirState,
}

impl ConformanceTap {
    /// Creates a tap reporting into `sink`.
    pub fn new(sink: ViolationSink) -> Self {
        ConformanceTap {
            sink,
            l2r: DirState::new("client->server"),
            r2l: DirState::new("server->client"),
        }
    }
}

impl Middlebox<TcpSegment> for ConformanceTap {
    fn process(&mut self, packet: &Packet<TcpSegment>, ctx: &mut MbContext<'_>) -> Verdict {
        let seg = &packet.payload;
        let now = ctx.now;
        let (fwd, rev) = match ctx.dir {
            Dir::LeftToRight => (&mut self.l2r, &mut self.r2l),
            Dir::RightToLeft => (&mut self.r2l, &mut self.l2r),
        };
        if seg.flags.syn {
            match fwd.iss {
                Some(iss) if iss != seg.seq => self.sink.report(
                    Layer::Tcp,
                    "syn-iss-stable",
                    now,
                    format!(
                        "{}: retransmitted SYN changed ISS {iss} -> {}",
                        fwd.label, seg.seq
                    ),
                ),
                _ => fwd.iss = Some(seg.seq),
            }
        } else if let Some(iss) = fwd.iss {
            if !seg.payload.is_empty() {
                // Data never precedes the sequence space (ISS+1 onward).
                if seg.seq.lt(iss + 1) {
                    self.sink.report(
                        Layer::Tcp,
                        "seq-below-iss",
                        now,
                        format!("{}: data at {} precedes ISS {iss}", fwd.label, seg.seq),
                    );
                } else {
                    let rel = (seg.seq - (iss + 1)) as u64;
                    fwd.tls.on_payload(rel, &seg.payload, now, &self.sink);
                }
            }
        }
        let seq_end = seg.seq + seg.seq_len();
        fwd.max_seq_end = Some(match fwd.max_seq_end {
            Some(m) => m.max(seq_end),
            None => seq_end,
        });
        if seg.flags.ack {
            // Acks only ever advance (cumulative acknowledgment).
            if let Some(prev) = fwd.max_ack {
                if seg.ack.lt(prev) {
                    self.sink.report(
                        Layer::Tcp,
                        "ack-monotonic",
                        now,
                        format!("{}: ack regressed {prev} -> {}", fwd.label, seg.ack),
                    );
                }
            }
            fwd.max_ack = Some(match fwd.max_ack {
                Some(m) => m.max(seg.ack),
                None => seg.ack,
            });
            // An ack can never cover sequence space the tap has not seen
            // travel the opposite direction.
            if let Some(rev_end) = rev.max_seq_end {
                if seg.ack.gt(rev_end) {
                    self.sink.report(
                        Layer::Tcp,
                        "ack-unsent",
                        now,
                        format!(
                            "{}: ack {} beyond opposite stream end {rev_end}",
                            fwd.label, seg.ack
                        ),
                    );
                }
            }
        }
        Verdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::{NodeId, ShapingState, SimRng, SimTime};
    use h2priv_tcp::TcpFlags;

    fn packet(seg: TcpSegment) -> Packet<TcpSegment> {
        let wire = seg.wire_bytes();
        Packet {
            src: NodeId(0),
            dst: NodeId(1),
            wire_bytes: wire,
            id: 0,
            payload: seg,
        }
    }

    fn run(tap: &mut ConformanceTap, dir: Dir, seg: TcpSegment) {
        let mut rng = SimRng::seed_from(0);
        let mut shaping = ShapingState::default();
        let mut ctx = MbContext {
            now: SimTime::ZERO,
            dir,
            rng: &mut rng,
            shaping: &mut shaping,
        };
        tap.process(&packet(seg), &mut ctx);
    }

    fn syn(seq: u32) -> TcpSegment {
        TcpSegment {
            seq: Seq(seq),
            ack: Seq(0),
            flags: TcpFlags::SYN,
            window: 65_535,
            payload: h2priv_bytes::SharedBytes::new(),
        }
    }

    fn pure_ack(ack: u32) -> TcpSegment {
        TcpSegment {
            seq: Seq(1),
            ack: Seq(ack),
            flags: TcpFlags::ACK,
            window: 65_535,
            payload: h2priv_bytes::SharedBytes::new(),
        }
    }

    #[test]
    fn ack_regression_is_flagged() {
        let sink = ViolationSink::new();
        let mut tap = ConformanceTap::new(sink.clone());
        run(&mut tap, Dir::LeftToRight, syn(100));
        run(&mut tap, Dir::RightToLeft, syn(500));
        run(&mut tap, Dir::LeftToRight, pure_ack(501));
        run(&mut tap, Dir::LeftToRight, pure_ack(510));
        assert!(sink.take().iter().any(|v| v.rule == "ack-unsent"));
        run(&mut tap, Dir::LeftToRight, pure_ack(502));
        assert!(sink.take().iter().any(|v| v.rule == "ack-monotonic"));
    }

    #[test]
    fn handshake_acks_are_clean() {
        let sink = ViolationSink::new();
        let mut tap = ConformanceTap::new(sink.clone());
        run(&mut tap, Dir::LeftToRight, syn(100));
        let mut synack = syn(500);
        synack.flags = TcpFlags::SYN_ACK;
        synack.ack = Seq(101);
        run(&mut tap, Dir::RightToLeft, synack);
        run(&mut tap, Dir::LeftToRight, pure_ack(501));
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
    }

    #[test]
    fn changed_iss_on_syn_retransmit_is_flagged() {
        let sink = ViolationSink::new();
        let mut tap = ConformanceTap::new(sink.clone());
        run(&mut tap, Dir::LeftToRight, syn(100));
        run(&mut tap, Dir::LeftToRight, syn(100)); // same ISS: fine
        assert!(sink.is_empty());
        run(&mut tap, Dir::LeftToRight, syn(200));
        assert!(sink.take().iter().any(|v| v.rule == "syn-iss-stable"));
    }
}
