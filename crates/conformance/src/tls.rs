//! TLS record-layer invariants, checked from the wire.
//!
//! Each direction of the connection is one ordered byte stream of sealed
//! records. The checker reassembles that stream from the (possibly
//! reordered, possibly retransmitted) TCP segments the tap observes and
//! verifies that:
//!
//! * record headers tile the stream exactly — every record starts where
//!   the previous one ended, with a known content type and a fragment no
//!   larger than `MAX_CIPHERTEXT` ("length sanity");
//! * every fragment is large enough to hold the AEAD nonce and tag;
//! * the explicit 8-byte nonce (the record sequence number, as in TLS 1.2
//!   GCM) increments by exactly one per record ("sequence continuity").
//!
//! The paper's passive monitor counts `application_data` records to count
//! GETs (§V); these invariants are what make that count well-defined.
//!
//! # Padded and dummy records
//!
//! Shaping defenses (constant-rate and adaptive-padding senders) pad
//! record plaintexts and inject *dummy* `application_data` records that
//! carry no real traffic. The checker accepts both deliberately: a padded
//! or dummy record is a perfectly ordinary record as long as it is sealed
//! **in-stream** by the sending endpoint's own record writer, so its
//! explicit nonce continues the per-direction sequence. That is exactly
//! what `record-seq` enforces — a middlebox splicing pre-canned dummy
//! records into the stream out-of-band would break continuity and be
//! flagged, while an endpoint-cooperating shaper passes. The only extra
//! obligation padding adds is the tiling upper bound: a padded fragment
//! must still fit `MAX_CIPHERTEXT`, reported as `record-too-long`.

use crate::{Layer, ViolationSink};
use h2priv_netsim::SimTime;
use h2priv_tls::{ContentType, RecordHeader, AEAD_OVERHEAD, HEADER_LEN, MAX_CIPHERTEXT};
use std::collections::BTreeMap;

/// Reassembles and validates one direction's record stream.
pub struct TlsDirChecker {
    label: &'static str,
    /// Next in-order stream offset expected.
    next_offset: u64,
    /// Out-of-order chunks not yet contiguous with `next_offset`.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Bytes of the record currently being assembled.
    rec: Vec<u8>,
    /// Per-direction record index; must match each record's explicit nonce.
    records: u64,
    /// Set after the first structural violation: once framing is lost every
    /// subsequent byte would "violate", so the checker reports once and
    /// stops for this direction.
    poisoned: bool,
}

impl TlsDirChecker {
    /// Creates a checker for one direction (`label` names it in reports).
    pub fn new(label: &'static str) -> Self {
        TlsDirChecker {
            label,
            next_offset: 0,
            pending: BTreeMap::new(),
            rec: Vec::new(),
            records: 0,
            poisoned: false,
        }
    }

    /// Records validated so far in this direction.
    pub fn records_seen(&self) -> u64 {
        self.records
    }

    /// Feeds the payload of one TCP segment at relative stream offset
    /// `offset` (0 = first payload byte after the SYN).
    pub fn on_payload(&mut self, offset: u64, bytes: &[u8], now: SimTime, sink: &ViolationSink) {
        if self.poisoned || bytes.is_empty() {
            return;
        }
        let end = offset + bytes.len() as u64;
        if end <= self.next_offset {
            return; // pure retransmission of delivered data
        }
        if offset > self.next_offset {
            // A hole precedes this chunk: park it (first copy wins; a
            // retransmission of the same range is byte-identical by the
            // send-buffer construction).
            self.pending.entry(offset).or_insert_with(|| bytes.to_vec());
            return;
        }
        let skip = (self.next_offset - offset) as usize;
        self.ingest(&bytes[skip..], now, sink);
        // Drain any parked chunks the new data made contiguous.
        while let Some((&start, _)) = self.pending.range(..=self.next_offset).next() {
            let chunk = self.pending.remove(&start).expect("key just seen");
            let chunk_end = start + chunk.len() as u64;
            if chunk_end > self.next_offset {
                let skip = (self.next_offset - start) as usize;
                self.ingest(&chunk[skip..], now, sink);
            }
            if self.poisoned {
                return;
            }
        }
    }

    fn ingest(&mut self, bytes: &[u8], now: SimTime, sink: &ViolationSink) {
        self.next_offset += bytes.len() as u64;
        self.rec.extend_from_slice(bytes);
        while self.rec.len() >= HEADER_LEN {
            let Some(header) = RecordHeader::decode(&self.rec) else {
                // A known content type with an over-limit length is a
                // tiling violation in its own right (padding overshot the
                // fragment bound), distinct from outright corruption.
                let fragment_len = u16::from_be_bytes([self.rec[3], self.rec[4]]) as usize;
                if ContentType::from_u8(self.rec[0]).is_some() && fragment_len > MAX_CIPHERTEXT {
                    sink.report(
                        Layer::Tls,
                        "record-too-long",
                        now,
                        format!(
                            "{}: record #{} fragment {fragment_len}B exceeds \
                             MAX_CIPHERTEXT ({MAX_CIPHERTEXT}B)",
                            self.label, self.records
                        ),
                    );
                } else {
                    sink.report(
                        Layer::Tls,
                        "record-header",
                        now,
                        format!(
                            "{}: invalid record header at stream offset {} (first byte {:#04x})",
                            self.label,
                            self.next_offset - self.rec.len() as u64,
                            self.rec[0]
                        ),
                    );
                }
                self.poisoned = true;
                return;
            };
            if (header.fragment_len as usize) < AEAD_OVERHEAD {
                sink.report(
                    Layer::Tls,
                    "record-length",
                    now,
                    format!(
                        "{}: record #{} fragment {}B cannot hold nonce+tag ({AEAD_OVERHEAD}B)",
                        self.label, self.records, header.fragment_len
                    ),
                );
                self.poisoned = true;
                return;
            }
            if self.rec.len() < header.wire_len() {
                break; // record still arriving
            }
            let nonce = u64::from_be_bytes(
                self.rec[HEADER_LEN..HEADER_LEN + 8]
                    .try_into()
                    .expect("8 bytes"),
            );
            if nonce != self.records {
                sink.report(
                    Layer::Tls,
                    "record-seq",
                    now,
                    format!(
                        "{}: record #{} carries nonce {nonce} (gap or replay)",
                        self.label, self.records
                    ),
                );
                self.poisoned = true;
                return;
            }
            self.records += 1;
            self.rec.drain(..header.wire_len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_tls::{Role, TlsSession};

    fn sealed_stream() -> Vec<u8> {
        let mut client = TlsSession::new(Role::Client, 42);
        let mut server = TlsSession::new(Role::Server, 42);
        // Client->server stream only: hello, then (after the server's
        // flight) the client finish, then sealed app data.
        let mut wire = client.initial_flight().expect("client hello");
        let out = server.receive(&wire).expect("server side");
        let out2 = client.receive(&out.reply).expect("client side");
        wire.extend_from_slice(&out2.reply);
        let fin = client.seal_app_data(&[9u8; 5000]).expect("established");
        wire.extend_from_slice(&fin);
        wire
    }

    #[test]
    fn in_order_stream_is_clean() {
        let wire = sealed_stream();
        let sink = ViolationSink::new();
        let mut c = TlsDirChecker::new("l2r");
        // Feed in awkward chunk sizes to exercise partial-record paths.
        let mut off = 0u64;
        for chunk in wire.chunks(37) {
            c.on_payload(off, chunk, SimTime::ZERO, &sink);
            off += chunk.len() as u64;
        }
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
        assert!(c.records_seen() >= 2);
    }

    #[test]
    fn reordered_and_retransmitted_segments_reassemble() {
        let wire = sealed_stream();
        let sink = ViolationSink::new();
        let mut c = TlsDirChecker::new("l2r");
        let cut = wire.len() / 2;
        // Second half first (parked), duplicate of it, then the first half.
        c.on_payload(cut as u64, &wire[cut..], SimTime::ZERO, &sink);
        c.on_payload(cut as u64, &wire[cut..], SimTime::ZERO, &sink);
        c.on_payload(0, &wire[..cut], SimTime::ZERO, &sink);
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
        assert_eq!(c.records_seen(), {
            let mut probe = TlsDirChecker::new("probe");
            probe.on_payload(0, &wire, SimTime::ZERO, &sink);
            probe.records_seen()
        });
    }

    #[test]
    fn corrupt_header_is_flagged_once() {
        let mut wire = sealed_stream();
        wire[0] = 0xff; // unknown content type
        let sink = ViolationSink::new();
        let mut c = TlsDirChecker::new("l2r");
        c.on_payload(0, &wire, SimTime::ZERO, &sink);
        assert_eq!(sink.total(), 1);
        // Further bytes are ignored after poisoning.
        c.on_payload(wire.len() as u64, &[1, 2, 3], SimTime::ZERO, &sink);
        assert_eq!(sink.total(), 1);
    }

    #[test]
    fn oversized_record_is_flagged_as_too_long() {
        // Hand-build an application_data header whose length field
        // overshoots the tiling bound (RecordHeader::decode refuses it).
        let too_big = (MAX_CIPHERTEXT + 1) as u16;
        let mut wire = vec![23, 3, 3];
        wire.extend_from_slice(&too_big.to_be_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        let sink = ViolationSink::new();
        let mut c = TlsDirChecker::new("l2r");
        c.on_payload(0, &wire, SimTime::ZERO, &sink);
        let v = sink.take();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "record-too-long");
    }

    #[test]
    fn in_stream_dummy_records_are_clean() {
        // A shaping defense injects dummy app-data records sealed by the
        // sender's own writer: nonce continuity holds, so the checker
        // accepts the stream exactly as it would undefended traffic.
        let mut client = TlsSession::new(Role::Client, 42);
        let mut server = TlsSession::new(Role::Server, 42);
        let mut wire = client.initial_flight().expect("client hello");
        let out = server.receive(&wire).expect("server side");
        let out2 = client.receive(&out.reply).expect("client side");
        wire.extend_from_slice(&out2.reply);
        let base = {
            let probe_sink = ViolationSink::new();
            let mut probe = TlsDirChecker::new("probe");
            probe.on_payload(0, &wire, SimTime::ZERO, &probe_sink);
            probe.records_seen()
        };
        // Real data, two dummies (a padded-to-17B PING-shaped record and a
        // max-size pad blob), more real data.
        wire.extend_from_slice(&client.seal_app_data(&[9u8; 1200]).unwrap());
        wire.extend_from_slice(&client.seal_app_data(&[0u8; 17]).unwrap());
        wire.extend_from_slice(&client.seal_app_data(&vec![0u8; 16_384]).unwrap());
        wire.extend_from_slice(&client.seal_app_data(&[9u8; 800]).unwrap());
        let sink = ViolationSink::new();
        let mut c = TlsDirChecker::new("l2r");
        for chunk in wire.chunks(1460) {
            c.on_payload(c.next_offset, chunk, SimTime::ZERO, &sink);
        }
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
        assert_eq!(c.records_seen(), base + 4);
    }

    #[test]
    fn out_of_band_dummy_record_breaks_sequence() {
        // The converse: a dummy record sealed by a *different* writer (a
        // middlebox with its own cipher state) restarts the nonce at 0 and
        // must trip sequence continuity when spliced into the stream.
        let wire = sealed_stream();
        let mut rogue = TlsSession::new(Role::Client, 42);
        let mut peer = TlsSession::new(Role::Server, 42);
        let hello = rogue.initial_flight().unwrap();
        let out = peer.receive(&hello).unwrap();
        rogue.receive(&out.reply).unwrap();
        let dummy = rogue.seal_app_data(&[0u8; 32]).unwrap();
        let mut spliced = wire.clone();
        spliced.extend_from_slice(&dummy);
        let sink = ViolationSink::new();
        let mut c = TlsDirChecker::new("l2r");
        c.on_payload(0, &spliced, SimTime::ZERO, &sink);
        let v = sink.take();
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert_eq!(v[0].rule, "record-seq");
    }

    #[test]
    fn nonce_gap_is_flagged() {
        let wire = sealed_stream();
        // Find the second record boundary and splice it out, shifting the
        // third record into its place: continuity must break.
        let h0 = RecordHeader::decode(&wire).unwrap();
        let r1 = h0.wire_len();
        let h1 = RecordHeader::decode(&wire[r1..]).unwrap();
        let r2 = r1 + h1.wire_len();
        let mut spliced = wire[..r1].to_vec();
        spliced.extend_from_slice(&wire[r2..]);
        let sink = ViolationSink::new();
        let mut c = TlsDirChecker::new("l2r");
        c.on_payload(0, &spliced, SimTime::ZERO, &sink);
        assert_eq!(sink.total(), 1, "violations: {:?}", sink.take());
    }
}
