//! Endpoint-side TCP invariants.
//!
//! These checks need the sender's own state (`snd_una`, cwnd, the Karn
//! probe), so they run at the host where [`TcpConnection::poll_transmit`]
//! is called rather than at the mid-path tap: an ACK observed at the
//! gateway may still be in flight toward the sender, which makes
//! "retransmit-only-unacked" undecidable from the wire alone.

use crate::{Layer, ViolationSink};
use h2priv_netsim::SimTime;
use h2priv_tcp::{Seq, TcpConnection, TcpSegment};

/// Watches one endpoint's transmitted segments against its own connection
/// state.
pub struct TcpEndpointChecker {
    label: &'static str,
    sink: ViolationSink,
    /// Our initial sequence number, learned from our SYN.
    iss: Option<Seq>,
    /// Highest stream offset (one past) this checker has seen transmitted.
    snd_max_seen: u64,
    /// Last observed `snd_una`, for monotonicity.
    last_una: u64,
}

impl TcpEndpointChecker {
    /// Creates a checker for the endpoint named `label` ("client"/"server").
    pub fn new(label: &'static str, sink: ViolationSink) -> Self {
        TcpEndpointChecker {
            label,
            sink,
            iss: None,
            snd_max_seen: 0,
            last_una: 0,
        }
    }

    fn report(&self, rule: &'static str, time: SimTime, detail: String) {
        self.sink
            .report(Layer::Tcp, rule, time, format!("{}: {detail}", self.label));
    }

    /// Observes one segment the endpoint just emitted, together with the
    /// connection that produced it. Call immediately after `poll_transmit`.
    pub fn on_transmit(&mut self, conn: &TcpConnection, seg: &TcpSegment, now: SimTime) {
        if seg.flags.syn {
            self.iss = Some(seg.seq);
            return;
        }
        let mss = conn.mss();
        // RFC 5681: the loss window is one segment — cwnd never collapses
        // below one MSS — and ssthresh is floored at two MSS (eq. 4).
        if conn.cwnd() < mss {
            self.report(
                "cwnd-floor",
                now,
                format!("cwnd {} < mss {mss}", conn.cwnd()),
            );
        }
        if conn.ssthresh() < 2 * mss {
            self.report(
                "ssthresh-floor",
                now,
                format!("ssthresh {} < 2*mss {}", conn.ssthresh(), 2 * mss),
            );
        }
        // Cumulative-ACK point only ever advances.
        let una = conn.snd_una();
        if una < self.last_una {
            self.report(
                "snd-una-monotonic",
                now,
                format!("snd_una regressed {} -> {una}", self.last_una),
            );
        }
        self.last_una = una;

        if seg.payload.is_empty() {
            return; // pure ACK / FIN: no data-range invariants
        }
        let Some(iss) = self.iss else {
            return; // data before SYN would be caught by the wire tap
        };
        // Relative stream offsets (transfers stay far below 4 GiB, so the
        // 32-bit wire distance extends to u64 directly).
        let start = (seg.seq - (iss + 1)) as u64;
        let end = start + seg.payload.len() as u64;
        let is_rexmit = start < self.snd_max_seen;
        if is_rexmit {
            // Retransmissions must cover at least one unacknowledged byte.
            if end <= una {
                self.report(
                    "rexmit-only-unacked",
                    now,
                    format!("retransmitted [{start},{end}) entirely below snd_una {una}"),
                );
            }
            // Karn: an RTT probe satisfiable by this retransmission must
            // have been invalidated (no samples from retransmitted data).
            if let Some(probe_end) = conn.rtt_probe_end() {
                if probe_end > start {
                    self.report(
                        "karn-probe",
                        now,
                        format!("probe end {probe_end} survives retransmission of [{start},{end})"),
                    );
                }
            }
        } else {
            // New data respects the congestion window (the sender may
            // overshoot by at most one segment, by design: the window test
            // happens before a full-MSS segment is cut).
            let limit = una + (conn.cwnd() + mss) as u64;
            if end > limit {
                self.report(
                    "cwnd-respected",
                    now,
                    format!(
                        "new data to {end} exceeds snd_una {una} + cwnd {} + mss {mss}",
                        conn.cwnd()
                    ),
                );
            }
        }
        self.snd_max_seen = self.snd_max_seen.max(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::SimDuration;
    use h2priv_tcp::{TcpConfig, TcpConnection};

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn clean_handshake_and_transfer_is_silent() {
        let sink = ViolationSink::new();
        let mut client = TcpConnection::client(TcpConfig::default());
        let mut server = TcpConnection::server(TcpConfig::default());
        let mut check_c = TcpEndpointChecker::new("client", sink.clone());
        let mut check_s = TcpEndpointChecker::new("server", sink.clone());
        client.write(&[7u8; 4000]);
        for step in 0..40u64 {
            let now = t(step);
            while let Some(seg) = client.poll_transmit(now) {
                check_c.on_transmit(&client, &seg, now);
                server.on_segment(seg, now);
            }
            while let Some(seg) = server.poll_transmit(now) {
                check_s.on_transmit(&server, &seg, now);
                client.on_segment(seg, now);
            }
        }
        assert_eq!(server.read().len(), 4000, "transfer did not complete");
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
    }

    #[test]
    fn loss_and_retransmission_stay_conformant() {
        let sink = ViolationSink::new();
        let mut client = TcpConnection::client(TcpConfig::default());
        let mut server = TcpConnection::server(TcpConfig::default());
        let mut check_c = TcpEndpointChecker::new("client", sink.clone());
        client.write(&[3u8; 20_000]);
        let mut dropped = false;
        for step in 0..4000u64 {
            let now = t(step);
            while let Some(seg) = client.poll_transmit(now) {
                check_c.on_transmit(&client, &seg, now);
                // Drop one mid-transfer data segment to force an RTO.
                if !dropped && !seg.payload.is_empty() && client.snd_max() > 5_000 {
                    dropped = true;
                    continue;
                }
                server.on_segment(seg, now);
            }
            while let Some(seg) = server.poll_transmit(now) {
                client.on_segment(seg, now);
            }
            client.on_tick(now);
        }
        assert!(dropped);
        assert!(client.stats().retransmissions > 0, "loss never recovered");
        assert!(sink.is_empty(), "violations: {:?}", sink.take());
    }
}
