//! The composed adversary: the paper's attack as a gateway middlebox.
//!
//! §V, "Adversary Setup": *"In the first phase of the attack, the adversary
//! introduced jitter (of 50 ms additional delay) in the client–server
//! communication path and also started counting the number of GET requests
//! … As soon as the client sent the 6th GET request (that corresponds to
//! the HTML file), the adversary reduced the bandwidth to 800 Mbps and
//! simultaneously started dropping 80 % application packets in the
//! server→client path. It does so for the next 6 seconds to force the
//! client to send a Reset Stream signal to the server. After this point,
//! the jitter value was increased to 80 ms additional delay per GET request
//! packet so as to force the server to transmit the 8 consecutive image
//! files in non-multiplexed form."*
//!
//! Every clause above is a field of [`AttackConfig`]; disabling fields
//! yields the single-lever adversaries of §IV (jitter-only for Table I,
//! jitter+throttle for Fig. 5, and so on).

use h2priv_analysis::ObservedPacket;
use h2priv_netsim::{BitsPerSec, Dir, MbContext, Middlebox, Packet, SimDuration, SimTime, Verdict};
use h2priv_tcp::TcpSegment;

use crate::controller::{C2sDecision, ControllerStats, NetworkController};
use crate::monitor::{MonitorConfig, TrafficMonitor};

/// Full attack configuration (§V values via
/// [`AttackConfig::paper_attack`]).
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Monitor settings.
    pub monitor: MonitorConfig,
    /// Phase-1 inter-GET spacing ("jitter"), if any.
    pub initial_spacing: Option<SimDuration>,
    /// GET index (1-based) that triggers the disruption phase, if any.
    pub trigger_get: Option<u64>,
    /// Bandwidth cap applied at the trigger.
    pub throttle: Option<BitsPerSec>,
    /// Server→client application-packet drop probability during the
    /// disruption window, in per-mille.
    pub drop_rate_per_mille: u16,
    /// Length of the disruption window.
    pub drop_duration: SimDuration,
    /// Inter-GET spacing after the disruption window.
    pub post_spacing: Option<SimDuration>,
    /// End the drop window as soon as a new GET is observed during it (the
    /// client's post-reset re-request — the paper's "use the number of
    /// forwarded GET requests" cue). The timer end is the backstop.
    pub stop_drops_on_reset_get: bool,
    /// After the disruption, *gate* GET packets (drop them, deferring to
    /// the client's TCP retransmissions) until the server→client direction
    /// has been quiet for [`quiet_gap`](Self::quiet_gap) — the channel
    /// must drain its loss-recovery backlog before the re-requested object
    /// is served, or its records merge into the recovery burst.
    pub gate_until_quiet: bool,
    /// How long the server→client direction must be free of application
    /// data before a gated GET is released.
    pub quiet_gap: SimDuration,
    /// Upper bound on gating: a gated GET is released this long after the
    /// serialization transition even if the channel never looked drained
    /// (nothing was left to recover).
    pub gate_deadline: SimDuration,
}

impl AttackConfig {
    /// The full §V attack: 50 ms spacing, trigger on the 6th GET, throttle
    /// to 800 Mbps, drop 80 % of server→client application packets for
    /// 6 s, then 80 ms spacing.
    pub fn paper_attack() -> Self {
        AttackConfig {
            monitor: MonitorConfig::default(),
            initial_spacing: Some(SimDuration::from_millis(50)),
            trigger_get: Some(6),
            throttle: Some(h2priv_netsim::mbps(800)),
            drop_rate_per_mille: 800,
            drop_duration: SimDuration::from_secs(6),
            post_spacing: Some(SimDuration::from_millis(80)),
            stop_drops_on_reset_get: true,
            gate_until_quiet: true,
            quiet_gap: SimDuration::from_millis(60),
            gate_deadline: SimDuration::from_secs(4),
        }
    }

    /// §IV-B's single lever: constant inter-GET spacing, nothing else.
    pub fn jitter_only(spacing: SimDuration) -> Self {
        AttackConfig {
            monitor: MonitorConfig::default(),
            initial_spacing: if spacing.is_zero() {
                None
            } else {
                Some(spacing)
            },
            trigger_get: None,
            throttle: None,
            drop_rate_per_mille: 0,
            drop_duration: SimDuration::ZERO,
            post_spacing: None,
            stop_drops_on_reset_get: false,
            gate_until_quiet: false,
            quiet_gap: SimDuration::ZERO,
            gate_deadline: SimDuration::ZERO,
        }
    }

    /// §IV-C: spacing plus a bandwidth cap from the start.
    pub fn jitter_and_throttle(spacing: SimDuration, rate: BitsPerSec) -> Self {
        AttackConfig {
            trigger_get: Some(1),
            throttle: Some(rate),
            ..AttackConfig::jitter_only(spacing)
        }
    }
}

/// The attack's phase, §V's three stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackPhase {
    /// Counting GETs, applying phase-1 spacing.
    Observing,
    /// Throttle + drop window active (after the trigger GET).
    Disrupting,
    /// Post-reset serialization spacing.
    Serializing,
}

/// The adversary middlebox.
#[derive(Debug)]
pub struct Adversary {
    config: AttackConfig,
    monitor: TrafficMonitor,
    controller: NetworkController,
    phase: AttackPhase,
    phase_log: Vec<(SimTime, AttackPhase)>,
    drop_window_end: Option<SimTime>,
    /// Last time a server→client packet with payload was forwarded.
    last_s2c_data: SimTime,
    /// Server→client data has been forwarded since the serialization
    /// transition (the loss-recovery drain the gate waits out).
    s2c_seen_since_serialize: bool,
    /// When the serialization transition happened.
    serialize_at: Option<SimTime>,
    started: bool,
}

impl Adversary {
    /// Creates an adversary.
    pub fn new(config: AttackConfig) -> Self {
        Adversary {
            monitor: TrafficMonitor::new(config.monitor.clone()),
            controller: NetworkController::new(),
            phase: AttackPhase::Observing,
            phase_log: Vec::new(),
            drop_window_end: None,
            last_s2c_data: SimTime::ZERO,
            s2c_seen_since_serialize: false,
            serialize_at: None,
            started: false,
            config,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> AttackPhase {
        self.phase
    }

    /// The phase transition history.
    pub fn phase_log(&self) -> &[(SimTime, AttackPhase)] {
        &self.phase_log
    }

    /// GETs counted so far.
    pub fn gets_seen(&self) -> u64 {
        self.monitor.gets_seen()
    }

    /// When the `n`-th GET was observed.
    pub fn get_time(&self, n: u64) -> Option<SimTime> {
        self.monitor.get_time(n)
    }

    /// When the disruption window ended (the post-window analysis cutoff).
    pub fn drop_window_end(&self) -> Option<SimTime> {
        self.drop_window_end
    }

    /// When the serialization phase began, if it did.
    pub fn serialize_start(&self) -> Option<SimTime> {
        self.phase_log
            .iter()
            .find(|(_, p)| *p == AttackPhase::Serializing)
            .map(|&(t, _)| t)
    }

    /// Shaping/drop counters.
    pub fn controller_stats(&self) -> ControllerStats {
        self.controller.stats()
    }

    /// When the post-reset gate released the first serialized GET.
    pub fn gate_released_at(&self) -> Option<SimTime> {
        self.controller.gate_released_at()
    }

    fn enter(&mut self, now: SimTime, phase: AttackPhase) {
        self.phase = phase;
        self.phase_log.push((now, phase));
    }
}

impl Middlebox<TcpSegment> for Adversary {
    fn process(&mut self, packet: &Packet<TcpSegment>, ctx: &mut MbContext<'_>) -> Verdict {
        let now = ctx.now;
        if !self.started {
            self.started = true;
            self.controller.set_jitter(self.config.initial_spacing);
            self.phase_log.push((now, AttackPhase::Observing));
        }
        // Observe (both directions feed the monitor).
        let observed = ObservedPacket::capture(now, ctx.dir, &packet.payload);
        let insight = self.monitor.observe(&observed);

        // Phase transitions.
        let mut entered_disrupting_now = false;
        if self.phase == AttackPhase::Observing {
            if let Some(trigger) = self.config.trigger_get {
                if insight.new_gets.iter().any(|&g| g >= trigger) {
                    self.controller.set_bandwidth(self.config.throttle);
                    if self.config.drop_rate_per_mille > 0 && !self.config.drop_duration.is_zero() {
                        let until = now + self.config.drop_duration;
                        self.controller
                            .start_drops(until, self.config.drop_rate_per_mille);
                        self.drop_window_end = Some(until);
                    }
                    self.enter(now, AttackPhase::Disrupting);
                    entered_disrupting_now = true;
                }
            }
        }
        if self.phase == AttackPhase::Disrupting && !entered_disrupting_now {
            let window_over = self.drop_window_end.is_none_or(|end| now >= end);
            // A *new* GET during the window is the client's post-reset
            // re-request (the trigger GET itself was consumed above).
            let reset_get = self.config.stop_drops_on_reset_get && !insight.new_gets.is_empty();
            if window_over || reset_get {
                self.controller.stop_drops();
                self.drop_window_end = Some(self.drop_window_end.map_or(now, |e| e.min(now)));
                if self.config.post_spacing.is_some() {
                    self.controller.set_jitter(self.config.post_spacing);
                }
                if self.config.gate_until_quiet {
                    self.controller.start_gating();
                    self.s2c_seen_since_serialize = false;
                    self.serialize_at = Some(now);
                }
                self.enter(now, AttackPhase::Serializing);
            }
        }

        // Push any bandwidth change into the gateway.
        if let Some(rate) = self.controller.take_bandwidth_change() {
            ctx.shaping.set_rate_both(rate);
        }

        // Verdict.
        let has_payload = !packet.payload.payload.is_empty();
        match ctx.dir {
            Dir::LeftToRight if has_payload => {
                let seg = &packet.payload;
                // "Quiet" for the gate means: the post-reset recovery has
                // visibly run and then subsided — or the deadline passed
                // (there was nothing left to recover).
                let drained = self.s2c_seen_since_serialize
                    && now.saturating_since(self.last_s2c_data) >= self.config.quiet_gap;
                let deadline_passed = self
                    .serialize_at
                    .is_some_and(|t| now.saturating_since(t) >= self.config.gate_deadline);
                let s2c_quiet = drained || deadline_passed;
                match self.controller.decide_c2s(
                    now,
                    insight.new_gets.len(),
                    seg.seq,
                    seg.seq_end(),
                    s2c_quiet,
                ) {
                    C2sDecision::Forward => Verdict::Forward,
                    C2sDecision::Hold(hold) => Verdict::Hold(hold),
                    C2sDecision::Gate => Verdict::Drop,
                }
            }
            Dir::RightToLeft if has_payload => {
                if self.controller.should_drop_s2c(now, ctx.rng) {
                    Verdict::Drop
                } else {
                    self.last_s2c_data = now;
                    if self.phase == AttackPhase::Serializing {
                        self.s2c_seen_since_serialize = true;
                    }
                    Verdict::Forward
                }
            }
            _ => Verdict::Forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::{NodeId, ShapingState, SimRng};
    use h2priv_tcp::{Seq, TcpFlags};
    use h2priv_tls::{ContentType, RecordCipher, RecordWriter};

    struct World {
        adv: Adversary,
        rng: SimRng,
        shaping: ShapingState,
        writer: RecordWriter,
        next_seq: u32,
        sent_syn: bool,
    }

    impl World {
        fn new(config: AttackConfig) -> Self {
            World {
                adv: Adversary::new(config),
                rng: SimRng::seed_from(1),
                shaping: ShapingState::default(),
                writer: RecordWriter::new(RecordCipher::new(1, 1)),
                next_seq: 101,
                sent_syn: false,
            }
        }

        fn feed(&mut self, dir: Dir, seg: TcpSegment, at: SimTime) -> Verdict {
            let (src, dst) = match dir {
                Dir::LeftToRight => (NodeId(0), NodeId(2)),
                Dir::RightToLeft => (NodeId(2), NodeId(0)),
            };
            let packet = Packet::new(src, dst, seg.wire_bytes(), seg);
            let mut ctx = MbContext {
                now: at,
                dir,
                rng: &mut self.rng,
                shaping: &mut self.shaping,
            };
            self.adv.process(&packet, &mut ctx)
        }

        fn send_get(&mut self, at: SimTime) -> Verdict {
            if !self.sent_syn {
                self.sent_syn = true;
                self.feed(
                    Dir::LeftToRight,
                    TcpSegment {
                        seq: Seq(100),
                        ack: Seq(0),
                        flags: TcpFlags::SYN,
                        window: 0,
                        payload: h2priv_bytes::SharedBytes::new(),
                    },
                    SimTime::ZERO,
                );
                // Preface- and SETTINGS-like records are skipped by the
                // monitor (skip_initial = 2).
                for len in [24usize, 48] {
                    let wire = self
                        .writer
                        .seal_message(ContentType::ApplicationData, &vec![0u8; len]);
                    let seq = self.next_seq;
                    self.next_seq += wire.len() as u32;
                    self.feed(
                        Dir::LeftToRight,
                        TcpSegment {
                            seq: Seq(seq),
                            ack: Seq(0),
                            flags: TcpFlags::ACK,
                            window: 0,
                            payload: wire.into(),
                        },
                        SimTime::ZERO,
                    );
                }
            }
            let wire = self
                .writer
                .seal_message(ContentType::ApplicationData, &[0u8; 60]);
            let seq = self.next_seq;
            self.next_seq += wire.len() as u32;
            self.feed(
                Dir::LeftToRight,
                TcpSegment {
                    seq: Seq(seq),
                    ack: Seq(0),
                    flags: TcpFlags::ACK,
                    window: 0,
                    payload: wire.into(),
                },
                at,
            )
        }

        fn s2c_data(&mut self, at: SimTime) -> Verdict {
            self.feed(
                Dir::RightToLeft,
                TcpSegment {
                    seq: Seq(5_000),
                    ack: Seq(0),
                    flags: TcpFlags::ACK,
                    window: 0,
                    payload: vec![0xAA; 500].into(),
                },
                at,
            )
        }
    }

    #[test]
    fn jitter_only_delays_cumulatively() {
        let mut w = World::new(AttackConfig::jitter_only(SimDuration::from_millis(50)));
        assert_eq!(w.send_get(SimTime::ZERO), Verdict::Forward);
        match w.send_get(SimTime::from_millis(1)) {
            Verdict::Hold(d) => assert_eq!(d, SimDuration::from_millis(50)),
            other => panic!("expected hold, got {other:?}"),
        }
        match w.send_get(SimTime::from_millis(2)) {
            Verdict::Hold(d) => assert_eq!(d, SimDuration::from_millis(100)),
            other => panic!("expected hold, got {other:?}"),
        }
        assert_eq!(w.adv.gets_seen(), 3);
    }

    #[test]
    fn trigger_get_starts_disruption() {
        let mut w = World::new(AttackConfig::paper_attack());
        for i in 0..5 {
            w.send_get(SimTime::from_millis(i * 200));
        }
        assert_eq!(w.adv.phase(), AttackPhase::Observing);
        w.send_get(SimTime::from_millis(1_200));
        assert_eq!(w.adv.phase(), AttackPhase::Disrupting);
        // Bandwidth cap was applied to the gateway.
        assert_eq!(
            w.shaping.rate(Dir::RightToLeft),
            Some(h2priv_netsim::mbps(800))
        );
        // Server→client data is mostly dropped during the window.
        let mut drops = 0;
        for i in 0..100 {
            if w.s2c_data(SimTime::from_millis(1_300 + i)) == Verdict::Drop {
                drops += 1;
            }
        }
        assert!((60..=95).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn drop_window_expires_into_serializing() {
        let mut w = World::new(AttackConfig::paper_attack());
        for i in 0..6 {
            w.send_get(SimTime::from_millis(i * 200));
        }
        assert_eq!(w.adv.phase(), AttackPhase::Disrupting);
        let end = w.adv.drop_window_end().unwrap();
        // A packet after the window flips the phase and stops drops.
        assert_eq!(
            w.s2c_data(end + SimDuration::from_millis(1)),
            Verdict::Forward
        );
        assert_eq!(w.adv.phase(), AttackPhase::Serializing);
        // The channel is not yet quiet: the next GET is gated (dropped,
        // deferred to its TCP retransmission).
        let t = end + SimDuration::from_millis(10);
        assert_eq!(w.send_get(t), Verdict::Drop);
        // Once the server→client direction has been quiet long enough,
        // GETs flow on the fresh 80 ms schedule: first passes, second is
        // held a full 80 ms.
        let quiet = t + SimDuration::from_millis(500);
        w.send_get(quiet);
        match w.send_get(quiet + SimDuration::from_millis(1)) {
            Verdict::Hold(d) => assert_eq!(d, SimDuration::from_millis(80)),
            other => panic!("expected hold, got {other:?}"),
        }
    }

    #[test]
    fn pure_acks_pass_untouched() {
        let mut w = World::new(AttackConfig::paper_attack());
        let v = w.feed(
            Dir::LeftToRight,
            TcpSegment {
                seq: Seq(1),
                ack: Seq(2),
                flags: TcpFlags::ACK,
                window: 0,
                payload: h2priv_bytes::SharedBytes::new(),
            },
            SimTime::from_millis(5),
        );
        assert_eq!(v, Verdict::Forward);
    }

    #[test]
    fn phase_log_records_transitions() {
        let mut w = World::new(AttackConfig::paper_attack());
        for i in 0..6 {
            w.send_get(SimTime::from_millis(i * 100));
        }
        let log = w.adv.phase_log();
        assert_eq!(log[0].1, AttackPhase::Observing);
        assert_eq!(log.last().unwrap().1, AttackPhase::Disrupting);
    }
}
