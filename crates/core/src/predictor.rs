//! The object prediction module — the paper's Python component (§V: "the
//! object prediction module, which was implemented using Python scripts").
//!
//! The adversary has "a pre-compiled list of image size to political party
//! mapping which it leverages to complete the attack" (§V). Here that list
//! is a [`SizeMap`]: object → expected observable size, where the
//! observable is the summed plaintext length of the TLS records in the
//! object's (serialized) response burst. Matching requires uniqueness: if
//! two map entries lie within tolerance of an observation, the prediction
//! abstains — ambiguity is a failure, exactly as in the paper's success
//! criterion.

use h2priv_bytes::FxHashMap;

use h2priv_analysis::Burst;
use h2priv_web::{ObjectId, Website};

/// Expected-size map with a matching tolerance.
#[derive(Debug, Clone)]
pub struct SizeMap {
    entries: Vec<(ObjectId, u64)>,
    tolerance: u64,
}

impl SizeMap {
    /// Creates an empty map with the given matching tolerance (bytes).
    pub fn new(tolerance: u64) -> Self {
        SizeMap {
            entries: Vec::new(),
            tolerance,
        }
    }

    /// Registers (or updates) an object's expected observable size.
    pub fn insert(&mut self, object: ObjectId, expected: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(o, _)| *o == object) {
            e.1 = expected;
        } else {
            self.entries.push((object, expected));
        }
    }

    /// The expected size for an object, if registered.
    pub fn expected(&self, object: ObjectId) -> Option<u64> {
        self.entries
            .iter()
            .find(|(o, _)| *o == object)
            .map(|&(_, s)| s)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Matches an observed size: the unique entry within tolerance, or
    /// `None` when zero or several entries qualify.
    pub fn match_size(&self, observed: u64) -> Option<ObjectId> {
        let mut hits = self
            .entries
            .iter()
            .filter(|&&(_, expected)| observed.abs_diff(expected) <= self.tolerance);
        let first = hits.next()?;
        if hits.next().is_some() {
            return None; // ambiguous
        }
        Some(first.0)
    }

    /// Builds an *analytic* map from pipeline constants: body size + one
    /// HEADERS record + per-DATA-frame overhead at the given mux chunk
    /// size. The empirical calibration in
    /// [`experiment`](crate::experiment) is preferred; this is the
    /// fallback when the adversary cannot probe the site.
    pub fn analytic(
        site: &Website,
        objects: &[ObjectId],
        chunk_size: usize,
        tolerance: u64,
    ) -> Self {
        let mut map = SizeMap::new(tolerance);
        for &object in objects {
            let Some(obj) = site.object(object) else {
                continue;
            };
            let frames = obj.size.div_ceil(chunk_size).max(1) as u64;
            // HEADERS record ≈ 9-byte frame header + ~30 B of HPACK block;
            // each DATA frame adds a 9-byte header.
            let expected = obj.size as u64 + 9 * frames + 39;
            map.insert(object, expected);
        }
        map
    }
}

/// One identified burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Identification {
    /// The burst that matched.
    pub burst: Burst,
    /// The object it matched.
    pub object: ObjectId,
}

/// Largest first record a burst may open with and still look like a
/// response (a HEADERS-frame record; DATA records are chunk-sized).
pub const MAX_HEADERS_RECORD_WIRE: usize = 160;

/// Runs the size map over a burst sequence, returning identifications in
/// burst (time) order. Bursts that do not open with a HEADERS-sized record
/// are fragments of interrupted transfers and are skipped.
pub fn identify_bursts(map: &SizeMap, bursts: &[Burst]) -> Vec<Identification> {
    bursts
        .iter()
        .filter(|b| b.first_record_wire <= MAX_HEADERS_RECORD_WIRE)
        .filter_map(|&burst| {
            map.match_size(burst.plaintext_bytes)
                .map(|object| Identification { burst, object })
        })
        .collect()
}

/// Matches a burst as the *sum of two* known objects — the paper's §VII
/// extension ("infer the object identity even when the object is partly
/// multiplexed … at the cost of employing complex analysis techniques").
/// Two objects served back-to-back within one burst window produce a
/// summed size; if that sum decomposes uniquely over the map, both are
/// identified. Ambiguity (several decompositions) abstains.
pub fn match_pair(map: &SizeMap, observed: u64) -> Option<(ObjectId, ObjectId)> {
    let mut found: Option<(ObjectId, ObjectId)> = None;
    for i in 0..map.entries.len() {
        for j in i..map.entries.len() {
            let (oi, si) = map.entries[i];
            let (oj, sj) = map.entries[j];
            if observed.abs_diff(si + sj) <= map.tolerance {
                if found.is_some() {
                    return None; // ambiguous decomposition
                }
                found = Some((oi, oj));
            }
        }
    }
    found
}

/// [`identify_bursts`] extended with pairwise decomposition: bursts that
/// match no single object are tried as two-object sums. Single matches are
/// preferred; a pair match contributes both identities at the burst's
/// position.
pub fn identify_bursts_with_pairs(map: &SizeMap, bursts: &[Burst]) -> Vec<Identification> {
    let mut out = Vec::new();
    for &burst in bursts
        .iter()
        .filter(|b| b.first_record_wire <= MAX_HEADERS_RECORD_WIRE)
    {
        if let Some(object) = map.match_size(burst.plaintext_bytes) {
            out.push(Identification { burst, object });
        } else if let Some((a, b)) = match_pair(map, burst.plaintext_bytes) {
            out.push(Identification { burst, object: a });
            out.push(Identification { burst, object: b });
        }
    }
    out
}

/// Predicts the order in which a set of objects was transmitted: each
/// object's position is its first identification. Objects never identified
/// are absent.
pub fn predicted_order(idents: &[Identification], objects: &[ObjectId]) -> Vec<ObjectId> {
    let mut first: FxHashMap<ObjectId, usize> = FxHashMap::default();
    for (i, ident) in idents.iter().enumerate() {
        first.entry(ident.object).or_insert(i);
    }
    let mut found: Vec<(usize, ObjectId)> = objects
        .iter()
        .filter_map(|&o| first.get(&o).map(|&i| (i, o)))
        .collect();
    found.sort_unstable();
    found.into_iter().map(|(_, o)| o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::SimTime;
    use h2priv_web::ObjectKind;

    fn burst(at_ms: u64, bytes: u64) -> Burst {
        Burst {
            start: SimTime::from_millis(at_ms),
            end: SimTime::from_millis(at_ms + 1),
            records: 3,
            plaintext_bytes: bytes,
            first_offset: 0,
            first_record_wire: 78,
        }
    }

    #[test]
    fn unique_match_within_tolerance() {
        let mut map = SizeMap::new(400);
        map.insert(ObjectId(1), 5_000);
        map.insert(ObjectId(2), 10_000);
        assert_eq!(map.match_size(5_100), Some(ObjectId(1)));
        assert_eq!(map.match_size(9_700), Some(ObjectId(2)));
        assert_eq!(map.match_size(7_000), None);
    }

    #[test]
    fn ambiguity_abstains() {
        let mut map = SizeMap::new(400);
        map.insert(ObjectId(1), 5_000);
        map.insert(ObjectId(2), 5_300);
        assert_eq!(map.match_size(5_200), None);
    }

    #[test]
    fn insert_updates_existing() {
        let mut map = SizeMap::new(100);
        map.insert(ObjectId(1), 5_000);
        map.insert(ObjectId(1), 6_000);
        assert_eq!(map.len(), 1);
        assert_eq!(map.expected(ObjectId(1)), Some(6_000));
    }

    #[test]
    fn analytic_estimate_tracks_body_size() {
        let mut site = Website::new();
        let a = site.add("/a.png", ObjectKind::Image, 10_000);
        let map = SizeMap::analytic(&site, &[a], 2_048, 400);
        let expected = map.expected(a).unwrap();
        assert!(expected > 10_000 && expected < 10_200, "{expected}");
    }

    #[test]
    fn identify_and_order() {
        let mut map = SizeMap::new(100);
        map.insert(ObjectId(1), 5_000);
        map.insert(ObjectId(2), 8_000);
        map.insert(ObjectId(3), 12_000);
        let bursts = vec![
            burst(0, 8_020),   // object 2
            burst(10, 600),    // nothing
            burst(20, 5_010),  // object 1
            burst(30, 5_015),  // object 1 again (re-serve)
            burst(40, 11_900), // object 3
        ];
        let idents = identify_bursts(&map, &bursts);
        assert_eq!(idents.len(), 4);
        let order = predicted_order(
            &idents,
            &[ObjectId(1), ObjectId(2), ObjectId(3), ObjectId(9)],
        );
        assert_eq!(order, vec![ObjectId(2), ObjectId(1), ObjectId(3)]);
    }

    #[test]
    fn pair_decomposition_unique_sum() {
        let mut map = SizeMap::new(100);
        map.insert(ObjectId(1), 5_000);
        map.insert(ObjectId(2), 8_000);
        map.insert(ObjectId(3), 20_000);
        assert_eq!(match_pair(&map, 13_050), Some((ObjectId(1), ObjectId(2))));
        assert_eq!(match_pair(&map, 40_010), Some((ObjectId(3), ObjectId(3))));
        assert_eq!(match_pair(&map, 17_000), None);
    }

    #[test]
    fn pair_decomposition_abstains_on_ambiguity() {
        let mut map = SizeMap::new(200);
        map.insert(ObjectId(1), 5_000);
        map.insert(ObjectId(2), 8_000);
        map.insert(ObjectId(3), 13_100); // 1+2 ≈ 3+nothing? build ambiguity
        map.insert(ObjectId(4), 100);
        // 13_150 matches 1+2 (13_000) and 3+4 (13_200) within 200.
        assert_eq!(match_pair(&map, 13_150), None);
    }

    #[test]
    fn pairs_extend_identification() {
        let mut map = SizeMap::new(100);
        map.insert(ObjectId(1), 5_000);
        map.insert(ObjectId(2), 8_000);
        let bursts = vec![burst(0, 13_020)]; // merged pair
        assert!(identify_bursts(&map, &bursts).is_empty());
        let idents = identify_bursts_with_pairs(&map, &bursts);
        assert_eq!(idents.len(), 2);
        assert_eq!(idents[0].object, ObjectId(1));
        assert_eq!(idents[1].object, ObjectId(2));
    }

    #[test]
    fn pairs_prefer_single_matches() {
        let mut map = SizeMap::new(100);
        map.insert(ObjectId(1), 5_000);
        map.insert(ObjectId(2), 10_000);
        // 10_020 matches object 2 singly; 1+1 also sums to 10_000 but the
        // single match must win.
        let idents = identify_bursts_with_pairs(&map, &[burst(0, 10_020)]);
        assert_eq!(idents.len(), 1);
        assert_eq!(idents[0].object, ObjectId(2));
    }

    #[test]
    fn empty_map_identifies_nothing() {
        let map = SizeMap::new(100);
        assert!(map.is_empty());
        assert!(identify_bursts(&map, &[burst(0, 1_000)]).is_empty());
    }
}
