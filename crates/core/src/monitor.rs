//! The traffic monitor — the paper's `tshark` component (§V: "the traffic
//! monitor, which was implemented using tshark").
//!
//! Runs *online* inside the adversary middlebox: it passively reassembles
//! both TCP directions, parses TLS record headers without keys, and counts
//! client→server GET requests using the paper's filter
//! (`ssl.record.content_type == 23`) plus a size heuristic that separates
//! request header blocks from small control frames (WINDOW_UPDATE /
//! SETTINGS-ack records are ≤ ~50 wire bytes; HPACK-compressed GETs are
//! larger).

use h2priv_analysis::{ObservedPacket, RecordEvent, RecordExtractor};
use h2priv_netsim::{Dir, SimTime};
use h2priv_tls::ContentType;

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Minimum wire length for a client→server application-data record to
    /// be counted as a GET request.
    pub get_min_wire_len: usize,
    /// Number of initial GET-sized records to skip: the client's
    /// connection preface and SETTINGS frame each ride in an
    /// application-data record of GET-like size.
    pub skip_initial: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            // A fully HPACK-indexed repeated GET shrinks to a 15-byte
            // frame (44 wire bytes); WINDOW_UPDATE and RST_STREAM records
            // are 13-byte frames (42 wire bytes). The margin is thin in
            // the simulator because our requests carry no cookies; real
            // requests are far larger.
            get_min_wire_len: 44,
            skip_initial: 2,
        }
    }
}

/// What the monitor concluded about one packet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PacketInsight {
    /// Completed records the packet revealed.
    pub records: Vec<RecordEvent>,
    /// GET requests among them (1-based indices assigned in order).
    pub new_gets: Vec<u64>,
}

/// The online passive monitor.
#[derive(Debug, Default)]
pub struct TrafficMonitor {
    config: MonitorConfig,
    c2s: RecordExtractor,
    s2c: RecordExtractor,
    gets_seen: u64,
    skipped: usize,
    get_times: Vec<SimTime>,
}

impl TrafficMonitor {
    /// Creates a monitor.
    pub fn new(config: MonitorConfig) -> Self {
        TrafficMonitor {
            config,
            ..TrafficMonitor::default()
        }
    }

    /// Total GETs counted so far.
    pub fn gets_seen(&self) -> u64 {
        self.gets_seen
    }

    /// When the `n`-th GET (1-based) was observed, if it has been.
    pub fn get_time(&self, n: u64) -> Option<SimTime> {
        self.get_times.get((n as usize).checked_sub(1)?).copied()
    }

    /// Feeds one packet; returns what it revealed.
    pub fn observe(&mut self, packet: &ObservedPacket) -> PacketInsight {
        let extractor = match packet.dir {
            Dir::LeftToRight => &mut self.c2s,
            Dir::RightToLeft => &mut self.s2c,
        };
        let records = extractor.push(packet);
        let mut new_gets = Vec::new();
        for record in &records {
            if record.dir == Dir::LeftToRight
                && record.content_type == ContentType::ApplicationData
                && record.wire_len >= self.config.get_min_wire_len
            {
                if self.skipped < self.config.skip_initial {
                    self.skipped += 1;
                    continue;
                }
                self.gets_seen += 1;
                self.get_times.push(packet.time);
                if std::env::var_os("H2PRIV_MON_DEBUG").is_some() {
                    eprintln!(
                        "GET#{} at {} wire={} offset={}",
                        self.gets_seen, packet.time, record.wire_len, record.stream_offset
                    );
                }
                new_gets.push(self.gets_seen);
            }
        }
        PacketInsight { records, new_gets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_tcp::{Seq, TcpFlags, TcpSegment};
    use h2priv_tls::{RecordCipher, RecordWriter};

    struct Feed {
        writer: RecordWriter,
        next_seq: u32,
        sent_syn: bool,
    }

    impl Feed {
        fn new() -> Self {
            Feed {
                writer: RecordWriter::new(RecordCipher::new(1, 1)),
                next_seq: 101,
                sent_syn: false,
            }
        }

        fn packets(&mut self, ct: ContentType, len: usize, at_ms: u64) -> Vec<ObservedPacket> {
            let mut out = Vec::new();
            if !self.sent_syn {
                self.sent_syn = true;
                out.push(ObservedPacket::capture(
                    SimTime::ZERO,
                    Dir::LeftToRight,
                    &TcpSegment {
                        seq: Seq(100),
                        ack: Seq(0),
                        flags: TcpFlags::SYN,
                        window: 0,
                        payload: h2priv_bytes::SharedBytes::new(),
                    },
                ));
            }
            let wire = self.writer.seal_message(ct, &vec![0u8; len]);
            for chunk in wire.chunks(1460) {
                out.push(ObservedPacket::capture(
                    SimTime::from_millis(at_ms),
                    Dir::LeftToRight,
                    &TcpSegment {
                        seq: Seq(self.next_seq),
                        ack: Seq(0),
                        flags: TcpFlags::ACK,
                        window: 0,
                        payload: chunk.to_vec().into(),
                    },
                ));
                self.next_seq += chunk.len() as u32;
            }
            out
        }
    }

    fn observe_all(m: &mut TrafficMonitor, packets: Vec<ObservedPacket>) -> Vec<u64> {
        packets.iter().flat_map(|p| m.observe(p).new_gets).collect()
    }

    #[test]
    fn counts_gets_and_skips_settings() {
        let mut monitor = TrafficMonitor::new(MonitorConfig::default());
        let mut feed = Feed::new();
        // Handshake record: ignored by type.
        observe_all(&mut monitor, feed.packets(ContentType::Handshake, 500, 0));
        // Preface- and SETTINGS-sized app records: skipped as initial.
        observe_all(
            &mut monitor,
            feed.packets(ContentType::ApplicationData, 24, 1),
        );
        observe_all(
            &mut monitor,
            feed.packets(ContentType::ApplicationData, 48, 1),
        );
        assert_eq!(monitor.gets_seen(), 0);
        // Two GETs.
        let g1 = observe_all(
            &mut monitor,
            feed.packets(ContentType::ApplicationData, 70, 5),
        );
        let g2 = observe_all(
            &mut monitor,
            feed.packets(ContentType::ApplicationData, 13, 6),
        );
        let g3 = observe_all(
            &mut monitor,
            feed.packets(ContentType::ApplicationData, 80, 9),
        );
        assert_eq!(g1, vec![1]);
        assert_eq!(g2, Vec::<u64>::new()); // too small: a WINDOW_UPDATE
        assert_eq!(g3, vec![2]);
        assert_eq!(monitor.gets_seen(), 2);
        assert_eq!(monitor.get_time(1), Some(SimTime::from_millis(5)));
        assert_eq!(monitor.get_time(2), Some(SimTime::from_millis(9)));
        assert_eq!(monitor.get_time(3), None);
    }

    #[test]
    fn server_direction_not_counted() {
        let mut monitor = TrafficMonitor::new(MonitorConfig::default());
        let mut writer = RecordWriter::new(RecordCipher::new(1, 2));
        let wire = writer.seal_message(ContentType::ApplicationData, &vec![0u8; 500]);
        let syn = ObservedPacket::capture(
            SimTime::ZERO,
            Dir::RightToLeft,
            &TcpSegment {
                seq: Seq(7),
                ack: Seq(0),
                flags: TcpFlags::SYN,
                window: 0,
                payload: h2priv_bytes::SharedBytes::new(),
            },
        );
        monitor.observe(&syn);
        let data = ObservedPacket::capture(
            SimTime::from_millis(1),
            Dir::RightToLeft,
            &TcpSegment {
                seq: Seq(8),
                ack: Seq(0),
                flags: TcpFlags::ACK,
                window: 0,
                payload: wire.into(),
            },
        );
        let insight = monitor.observe(&data);
        assert_eq!(insight.records.len(), 1);
        assert!(insight.new_gets.is_empty());
        assert_eq!(monitor.gets_seen(), 0);
    }

    #[test]
    fn retransmissions_do_not_double_count() {
        let mut monitor = TrafficMonitor::new(MonitorConfig {
            skip_initial: 0,
            ..MonitorConfig::default()
        });
        let mut feed = Feed::new();
        let packets = feed.packets(ContentType::ApplicationData, 70, 2);
        let gets = observe_all(&mut monitor, packets.clone());
        assert_eq!(gets.len(), 1);
        // Same packets again (a TCP retransmission).
        let gets = observe_all(&mut monitor, packets);
        assert!(gets.is_empty());
        assert_eq!(monitor.gets_seen(), 1);
    }
}
