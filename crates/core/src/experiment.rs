//! Experiment drivers: the paper's trials as callable functions.
//!
//! One *trial* = one volunteer loading the survey-result page once
//! (§V "Client setup"), with or without the adversary on the gateway.
//! These helpers build the calibrated scenario, install an [`Adversary`],
//! run it, and score the outcome against the §II-A criterion:
//! *success on an object ⇔ its degree of multiplexing reached 0 **and**
//! the object was identified from the encrypted trace*.

use std::cell::RefCell;
use std::rc::Rc;

use h2priv_analysis::{app_data_records, extract_records, segment_bursts, GroundTruth, WireTrace};
use h2priv_netsim::{Dir, SimDuration, SimRng, SimTime};
use h2priv_testkit::{build_scenario, run_scenario, RunResult, ScenarioConfig};
use h2priv_web::isidewith::{self, Isidewith};
use h2priv_web::{BrowsePlan, ObjectId, Phase, PlanStep, Trigger};

use crate::adversary::{Adversary, AttackConfig, AttackPhase};
use crate::controller::ControllerStats;
use crate::predictor::{identify_bursts, predicted_order, SizeMap};

/// Burst-segmentation gap used by the analyzer: above the RTT (a
/// congestion-window-paced serve pauses ~one RTT between flights, which
/// must not split a burst), below the idle left by the 80 ms request
/// spacing between consecutive serves.
pub const BURST_GAP: SimDuration = SimDuration::from_millis(30);

/// Matching tolerance of the calibrated size map, bytes.
pub const SIZE_TOLERANCE: u64 = 400;

/// Post-run snapshot of the adversary's internal state.
#[derive(Debug, Clone)]
pub struct AdversarySnapshot {
    /// Phase transitions with timestamps.
    pub phase_log: Vec<(SimTime, AttackPhase)>,
    /// GETs the monitor counted.
    pub gets_seen: u64,
    /// End of the §IV-D disruption window, if one ran.
    pub drop_window_end: Option<SimTime>,
    /// When serialization began, if it did.
    pub serialize_start: Option<SimTime>,
    /// When the post-reset gate released the first serialized GET.
    pub gate_released_at: Option<SimTime>,
    /// Shaping counters.
    pub controller: ControllerStats,
}

impl AdversarySnapshot {
    /// The instant from which the predictor analyzes the capture: the
    /// serialized window begins once the post-reset gate released (the
    /// quiet gap after the serialization transition bounds it from below).
    pub fn analysis_start(&self, attack: &AttackConfig) -> Option<SimTime> {
        self.gate_released_at
            .or(self.serialize_start.map(|t| t + attack.quiet_gap))
            .or(self.drop_window_end)
    }
}

/// One executed trial.
#[derive(Debug)]
pub struct AttackTrial {
    /// The scenario outcome.
    pub result: RunResult,
    /// Adversary state (present when an adversary was installed).
    pub adversary: Option<AdversarySnapshot>,
    /// The site/plan/golden-order used.
    pub iw: Isidewith,
}

/// Builds the paper's scenario for a trial seed: the user's survey outcome
/// is a seed-derived random permutation (the volunteers' answers), and all
/// timing noise derives from the same seed.
pub fn paper_scenario(seed: u64) -> (Isidewith, ScenarioConfig) {
    let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let golden = rng.permutation(8);
    let iw = isidewith::build(&golden);
    let cfg = ScenarioConfig {
        seed,
        ..ScenarioConfig::default()
    };
    (iw, cfg)
}

/// Runs one trial, optionally under attack, with an optional scenario
/// tweak (used by the parameter-sweep experiments).
pub fn run_paper_trial(
    seed: u64,
    attack: Option<&AttackConfig>,
    tweak: impl FnOnce(&mut ScenarioConfig),
) -> AttackTrial {
    let (iw, mut cfg) = paper_scenario(seed);
    tweak(&mut cfg);
    let adversary = attack.map(|config| Rc::new(RefCell::new(Adversary::new(config.clone()))));
    let scenario = build_scenario(
        &iw.site,
        &iw.plan,
        &cfg,
        adversary
            .clone()
            .map(|a| Box::new(a) as Box<dyn h2priv_netsim::Middlebox<h2priv_tcp::TcpSegment>>),
    );
    let result = run_scenario(scenario);
    let snapshot = adversary.map(|a| {
        let a = a.borrow();
        AdversarySnapshot {
            phase_log: a.phase_log().to_vec(),
            gets_seen: a.gets_seen(),
            drop_window_end: a.drop_window_end(),
            serialize_start: a.serialize_start(),
            gate_released_at: a.gate_released_at(),
            controller: a.controller_stats(),
        }
    });
    AttackTrial {
        result,
        adversary: snapshot,
        iw,
    }
}

/// Calibrates the pre-compiled size map the §V predictor uses: each object
/// of interest is fetched alone over a quiet network and its burst size
/// recorded — exactly how the paper's adversary built its
/// "image size to political party mapping".
pub fn calibrate_size_map(objects: &[ObjectId]) -> SizeMap {
    calibrate_size_map_with(objects, |_| {})
}

/// [`calibrate_size_map`] with a scenario tweak applied to every
/// calibration fetch. Per Kerckhoffs' principle the defense evaluation
/// assumes the adversary knows the deployed countermeasure, so it
/// calibrates its size map against the *defended* server — pass a tweak
/// setting the same [`ScenarioConfig::defense`] the victim runs.
pub fn calibrate_size_map_with(
    objects: &[ObjectId],
    tweak: impl Fn(&mut ScenarioConfig),
) -> SizeMap {
    let golden: Vec<usize> = (0..8).collect();
    let iw = isidewith::build(&golden);
    let mut map = SizeMap::new(SIZE_TOLERANCE);
    for &object in objects {
        let plan = BrowsePlan::new().with_phase(Phase {
            trigger: Trigger::Start,
            delay: SimDuration::ZERO,
            steps: vec![PlanStep {
                object,
                gap: SimDuration::ZERO,
            }],
            reissue: true,
        });
        let mut cfg = ScenarioConfig {
            seed: 0xCA11_B8A7E ^ object.0 as u64,
            ..ScenarioConfig::default()
        };
        cfg.browser.gap_noise_frac = 0.0;
        cfg.server_link.jitter = h2priv_netsim::DurationDist::None;
        tweak(&mut cfg);
        let result = h2priv_testkit::run_trial(&iw.site, &plan, &cfg, None);
        let records = extract_records(&result.trace);
        let data = app_data_records(&records, Dir::RightToLeft);
        let bursts = segment_bursts(&data, BURST_GAP);
        if let Some(biggest) = bursts.iter().max_by_key(|b| b.plaintext_bytes) {
            map.insert(object, biggest.plaintext_bytes);
        }
    }
    map
}

/// Per-object scoring.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectReport {
    /// The object of interest.
    pub object: ObjectId,
    /// Smallest degree of multiplexing across its complete transmissions
    /// (None: never fully transmitted).
    pub degree: Option<f64>,
    /// The size map matched some burst to this object.
    pub identified: bool,
    /// The paper's success criterion: degree 0 and identified.
    pub success: bool,
}

/// Scored trial.
#[derive(Debug, Clone)]
pub struct TrialAnalysis {
    /// Reports for the requested objects of interest, same order.
    pub objects: Vec<ObjectReport>,
    /// Predicted transmission order of the emblem images (party indices in
    /// the order the adversary believes they were displayed).
    pub predicted_parties: Vec<usize>,
    /// Per-rank correctness of the predicted party sequence.
    pub rank_correct: Vec<bool>,
    /// The whole sequence (all 8 ranks) was recovered.
    pub full_sequence_correct: bool,
    /// The trial's connection broke.
    pub broken: bool,
}

/// Scores one trial against the golden reference.
///
/// `analysis_start` restricts identification to bursts at or after the
/// given instant (the adversary analyzes the post-reset window in the full
/// attack); `None` analyzes the whole capture.
pub fn analyze_trial(
    trial: &AttackTrial,
    map: &SizeMap,
    objects_of_interest: &[ObjectId],
    analysis_start: Option<SimTime>,
) -> TrialAnalysis {
    analyze_capture(
        &trial.result.trace,
        &trial.result.truth,
        &trial.iw,
        trial.result.broken,
        map,
        objects_of_interest,
        analysis_start,
    )
}

/// Scores one captured connection against the golden reference, without
/// requiring a full [`AttackTrial`] — the fleet scenario's victim capture
/// (a wire trace plus seal-time ground truth pulled out of a population
/// run) routes through here, as does [`analyze_trial`].
#[allow(clippy::too_many_arguments)]
pub fn analyze_capture(
    trace: &WireTrace,
    truth: &GroundTruth,
    iw: &Isidewith,
    broken: bool,
    map: &SizeMap,
    objects_of_interest: &[ObjectId],
    analysis_start: Option<SimTime>,
) -> TrialAnalysis {
    let records = extract_records(trace);
    let mut data = app_data_records(&records, Dir::RightToLeft);
    if let Some(start) = analysis_start {
        data.retain(|r| r.time >= start);
    }
    let bursts = segment_bursts(&data, BURST_GAP);
    let idents = identify_bursts(map, &bursts);

    let objects = objects_of_interest
        .iter()
        .map(|&object| {
            let degree = truth.min_degree_for(object);
            let identified = idents.iter().any(|i| i.object == object);
            let success = identified && degree == Some(0.0);
            ObjectReport {
                object,
                degree,
                identified,
                success,
            }
        })
        .collect();

    // Image order prediction.
    let image_objects: Vec<ObjectId> = iw.images.to_vec();
    let order = predicted_order(&idents, &image_objects);
    let predicted_parties: Vec<usize> = order
        .iter()
        .filter_map(|o| iw.images.iter().position(|i| i == o))
        .collect();
    let rank_correct: Vec<bool> = (0..8)
        .map(|rank| {
            predicted_parties.get(rank).copied() == iw.golden_order.get(rank).copied()
                && rank < predicted_parties.len()
        })
        .collect();
    let full_sequence_correct = rank_correct.iter().all(|&c| c);

    TrialAnalysis {
        objects,
        predicted_parties,
        rank_correct,
        full_sequence_correct,
        broken,
    }
}

/// The nine objects of interest of §V: the result HTML and the 8 emblem
/// images (party order).
pub fn objects_of_interest(iw: &Isidewith) -> Vec<ObjectId> {
    let mut v = vec![iw.html];
    v.extend(iw.images);
    v
}
