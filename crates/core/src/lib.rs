//! # h2priv-core — the HTTP/2 multiplexing serialization attack
//!
//! The primary contribution of *"Depending on HTTP/2 for Privacy? Good
//! Luck!"* (DSN 2020), as a library. The adversary is a compromised
//! on-path gateway that defeats the privacy attributed to HTTP/2
//! multiplexing by *serializing* the server's object transmissions:
//!
//! 1. [`TrafficMonitor`] (the paper's `tshark`) passively reassembles the
//!    TCP streams, parses TLS record headers, and counts GET requests via
//!    the `content_type == 23` filter.
//! 2. [`NetworkController`] (the paper's `tc`/bash scripts) spaces
//!    GET-carrying packets (§IV-B jitter), caps bandwidth (§IV-C), and
//!    drops server→client application packets to force an HTTP/2
//!    `RST_STREAM` (§IV-D).
//! 3. [`SizeMap`] (the paper's Python predictor) matches the summed record
//!    sizes of serialized response bursts against a pre-compiled
//!    object-size map.
//! 4. [`Adversary`] composes the three into the §V phase machine; its
//!    [`AttackConfig`] fields map one-to-one onto the paper's knobs, so
//!    the §IV single-lever experiments are just partial configurations.
//!
//! The [`experiment`] module exposes trial runners and scoring used by the
//! benches that regenerate every table and figure (see `EXPERIMENTS.md`).
//!
//! # Examples
//!
//! ```no_run
//! use h2priv_core::{experiment, AttackConfig};
//!
//! // One full §V attack trial with the paper's parameters.
//! let attack = AttackConfig::paper_attack();
//! let trial = experiment::run_paper_trial(42, Some(&attack), |_| {});
//! let map = experiment::calibrate_size_map(&experiment::objects_of_interest(&trial.iw));
//! let analysis = experiment::analyze_trial(
//!     &trial,
//!     &map,
//!     &experiment::objects_of_interest(&trial.iw),
//!     trial.adversary.as_ref().and_then(|a| a.drop_window_end),
//! );
//! println!("HTML recovered: {}", analysis.objects[0].success);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adversary;
mod controller;
pub mod experiment;
mod monitor;
mod predictor;

/// The byte-sharing primitives of the stack ([`h2priv_bytes`]), re-exported
/// so experiment code can name `h2priv_core::bytes::SharedBytes` without a
/// separate dependency on the leaf crate.
pub mod bytes {
    pub use h2priv_bytes::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher, SharedBytes};
}

pub use adversary::{Adversary, AttackConfig, AttackPhase};
pub use controller::{ControllerStats, DropWindow, NetworkController};
pub use monitor::{MonitorConfig, PacketInsight, TrafficMonitor};
pub use predictor::{
    identify_bursts, identify_bursts_with_pairs, match_pair, predicted_order, Identification,
    SizeMap,
};
