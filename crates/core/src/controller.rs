//! The network controller — the paper's `tc`/bash component (§V: "the
//! network controller, which was implemented using bash scripts").
//!
//! Executes the three shaping primitives of §IV on behalf of the adversary:
//!
//! * **request spacing** (§IV-B): hold client→server GET-carrying packets
//!   so consecutive GETs reach the server at least `spacing` apart
//!   ("the first request can be delayed by 0 ms, second by *d* ms, the
//!   third by 2*d* ms, and so on, to achieve an inter-arrival spacing of
//!   *d* ms");
//! * **bandwidth throttling** (§IV-C): cap the gateway's egress rate in
//!   both directions;
//! * **targeted drops** (§IV-D): discard a fraction of server→client
//!   packets that carry application data, for a bounded window.
//!
//! Only GET-carrying packets (and their own TCP retransmissions, which
//! must not overtake the held original) are delayed; acknowledgments and
//! WINDOW_UPDATE carriers pass untouched, as netem-style per-packet delay
//! of request traffic would leave them.

use h2priv_netsim::{BitsPerSec, SimDuration, SimRng, SimTime};
use h2priv_tcp::Seq;

/// An active drop window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropWindow {
    /// Drops stop at this instant.
    pub until: SimTime,
    /// Probability of dropping an eligible packet, in per-mille
    /// (800 = 80 %).
    pub rate_per_mille: u16,
}

/// Counters kept by the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// GET-carrying packets held for spacing.
    pub gets_spaced: u64,
    /// Total hold time applied, nanoseconds.
    pub hold_nanos: u64,
    /// Packets dropped in drop windows.
    pub dropped: u64,
    /// GET packets gated (dropped pending server→client quiescence).
    pub gated: u64,
}

/// What to do with a client→server data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum C2sDecision {
    /// Pass immediately.
    Forward,
    /// Delay by the given amount.
    Hold(SimDuration),
    /// Drop; the client's TCP retransmission will re-offer it later.
    Gate,
}

/// The shaping engine.
#[derive(Debug, Default)]
pub struct NetworkController {
    /// Per-GET jitter increment *d* (None = off): the *k*-th GET of the
    /// current schedule is held an extra `k·d` beyond its arrival
    /// ("the first request can be delayed by 0 ms, second by d ms, the
    /// third by 2d ms, and so on", §IV-B).
    jitter: Option<SimDuration>,
    /// Index of the next GET within the current jitter schedule.
    jitter_k: u64,
    /// Earliest release instant of the current schedule (the adversary's
    /// recovery allowance after the forced reset).
    jitter_anchor: SimTime,
    /// Requested symmetric bandwidth cap (None = wire speed).
    bandwidth: Option<BitsPerSec>,
    /// Whether the bandwidth setting has been pushed to the gateway.
    bandwidth_dirty: bool,
    /// Active drop window on the server→client direction.
    drop: Option<DropWindow>,
    /// Sequence ranges of held GET packets and their release times, so a
    /// TCP retransmission cannot overtake its held original.
    held_ranges: Vec<(Seq, Seq, SimTime)>,
    /// While true, GET packets are *gated*: dropped until the
    /// server→client direction is quiet, deferring them via the client's
    /// own TCP retransmission. Cleared after the first successful release.
    gating: bool,
    /// When the gate released (the serialized window's true start).
    gate_released_at: Option<SimTime>,
    /// Sequence ranges (and their GET counts) currently gated.
    gated: Vec<(Seq, Seq, usize)>,
    stats: ControllerStats,
}

impl NetworkController {
    /// Creates an idle controller (everything off).
    pub fn new() -> Self {
        NetworkController::default()
    }

    /// Counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Sets (or clears) the per-GET jitter increment and restarts the
    /// schedule (the next GET is request 0 of the new schedule).
    pub fn set_jitter(&mut self, jitter: Option<SimDuration>) {
        self.set_jitter_anchored(jitter, SimTime::ZERO);
    }

    /// As [`set_jitter`](Self::set_jitter), additionally floor-releasing
    /// every GET of the new schedule at `anchor`: §IV-D's recovery
    /// allowance, giving the post-reset TCP loss recovery time to drain
    /// before the first serialized object is requested.
    pub fn set_jitter_anchored(&mut self, jitter: Option<SimDuration>, anchor: SimTime) {
        self.jitter = jitter;
        self.jitter_k = 0;
        self.jitter_anchor = anchor;
    }

    /// Starts gating: GET packets are dropped (deferred to their TCP
    /// retransmissions) until the server→client direction is quiet, at
    /// which point the first release re-anchors the jitter schedule.
    /// §IV-D: the re-requested object must start on a drained channel.
    pub fn start_gating(&mut self) {
        self.gating = true;
    }

    /// True while gating is active.
    pub fn is_gating(&self) -> bool {
        self.gating
    }

    /// When the gate released, if it has.
    pub fn gate_released_at(&self) -> Option<SimTime> {
        self.gate_released_at
    }

    /// Sets (or clears) the symmetric bandwidth cap. Takes effect on the
    /// next transiting packet.
    pub fn set_bandwidth(&mut self, rate: Option<BitsPerSec>) {
        self.bandwidth = rate;
        self.bandwidth_dirty = true;
    }

    /// Starts dropping `rate_per_mille`/1000 of server→client data packets
    /// until `until`.
    pub fn start_drops(&mut self, until: SimTime, rate_per_mille: u16) {
        self.drop = Some(DropWindow {
            until,
            rate_per_mille: rate_per_mille.min(1000),
        });
    }

    /// Cancels any active drop window.
    pub fn stop_drops(&mut self) {
        self.drop = None;
    }

    /// True while a drop window is active at `now`.
    pub fn dropping_at(&self, now: SimTime) -> bool {
        self.drop.is_some_and(|d| now < d.until)
    }

    /// The pending bandwidth cap, if it changed since last applied.
    /// The adversary pushes it into the gateway's shaping state.
    pub fn take_bandwidth_change(&mut self) -> Option<Option<BitsPerSec>> {
        if self.bandwidth_dirty {
            self.bandwidth_dirty = false;
            Some(self.bandwidth)
        } else {
            None
        }
    }

    /// Decides the fate of a server→client packet carrying application
    /// data. Returns `true` to drop it.
    pub fn should_drop_s2c(&mut self, now: SimTime, rng: &mut SimRng) -> bool {
        let Some(window) = self.drop else {
            return false;
        };
        if now >= window.until {
            self.drop = None;
            return false;
        }
        if rng.chance(window.rate_per_mille as f64 / 1000.0) {
            self.stats.dropped += 1;
            true
        } else {
            false
        }
    }

    /// Decides the fate of a client→server data-carrying packet covering
    /// the sequence range `[seq_start, seq_end)`. `new_gets` is the number
    /// of newly seen GETs the packet carries (0 for retransmissions and
    /// control carriers); `s2c_quiet` reports whether the server→client
    /// direction has been free of application data recently (the gating
    /// condition).
    ///
    /// Non-GET packets pass untouched unless they overlap the byte range
    /// of a still-held (or gated) GET — a TCP retransmission — in which
    /// case they share the original's fate.
    pub fn decide_c2s(
        &mut self,
        now: SimTime,
        new_gets: usize,
        seq_start: Seq,
        seq_end: Seq,
        s2c_quiet: bool,
    ) -> C2sDecision {
        self.held_ranges.retain(|&(_, _, release)| release > now);
        let overlaps = |hs: Seq, he: Seq| seq_start.lt(he) && hs.lt(seq_end);
        // Retransmission of a gated GET re-offers its request count.
        let gated_idx = self.gated.iter().position(|&(gs, ge, _)| overlaps(gs, ge));
        let gets = if new_gets > 0 {
            new_gets
        } else if let Some(i) = gated_idx {
            self.gated[i].2
        } else {
            // Retransmission of a held GET?
            let mut release = now;
            for &(hs, he, hrel) in &self.held_ranges {
                if overlaps(hs, he) {
                    release = release.max(hrel);
                }
            }
            let hold = release - now;
            self.stats.hold_nanos += hold.as_nanos();
            return if hold.is_zero() {
                C2sDecision::Forward
            } else {
                C2sDecision::Hold(hold)
            };
        };
        if self.gating {
            if !s2c_quiet {
                if let Some(i) = gated_idx {
                    self.gated[i].0 = seq_start;
                    self.gated[i].1 = seq_end;
                } else {
                    self.gated.push((seq_start, seq_end, gets));
                }
                self.stats.gated += 1;
                return C2sDecision::Gate;
            }
            // Quiet: release, re-anchor the schedule here, stop gating.
            self.gating = false;
            self.gated.clear();
            self.jitter_anchor = now;
            self.gate_released_at = Some(now);
        }
        let mut release = now;
        if let Some(d) = self.jitter {
            release = release.max(self.jitter_anchor.max(now) + d * self.jitter_k);
            if std::env::var_os("H2PRIV_CTRL_DEBUG").is_some() {
                eprintln!("HOLD k={} at {now} -> release {release}", self.jitter_k);
            }
            self.jitter_k += gets as u64;
            if release > now {
                self.stats.gets_spaced += 1;
                self.held_ranges.push((seq_start, seq_end, release));
            }
        }
        let hold = release - now;
        self.stats.hold_nanos += hold.as_nanos();
        if hold.is_zero() {
            C2sDecision::Forward
        } else {
            C2sDecision::Hold(hold)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn fwd(c: &mut NetworkController, now: SimTime, gets: usize, a: u32, b: u32) -> C2sDecision {
        c.decide_c2s(now, gets, Seq(a), Seq(b), true)
    }

    fn hold_ms(d: C2sDecision) -> u64 {
        match d {
            C2sDecision::Forward => 0,
            C2sDecision::Hold(h) => h.as_millis(),
            C2sDecision::Gate => panic!("unexpected gate"),
        }
    }

    #[test]
    fn no_jitter_means_no_hold() {
        let mut c = NetworkController::new();
        assert_eq!(fwd(&mut c, ms(5), 1, 0, 70), C2sDecision::Forward);
    }

    #[test]
    fn jitter_is_cumulative_per_get() {
        let mut c = NetworkController::new();
        c.set_jitter(Some(SimDuration::from_millis(50)));
        // §IV-B: first delayed 0, second by d, third by 2d.
        assert_eq!(hold_ms(fwd(&mut c, ms(0), 1, 0, 70)), 0);
        assert_eq!(hold_ms(fwd(&mut c, ms(1), 1, 70, 140)), 50);
        assert_eq!(hold_ms(fwd(&mut c, ms(2), 1, 140, 210)), 100);
        assert_eq!(c.stats().gets_spaced, 2);
    }

    #[test]
    fn bunched_gets_achieve_spacing_d() {
        // Requests arriving together leave with ~d inter-release gaps.
        let mut c = NetworkController::new();
        c.set_jitter(Some(SimDuration::from_millis(80)));
        let releases: Vec<u64> = (0..4)
            .map(|i| hold_ms(fwd(&mut c, ms(0), 1, i * 70, (i + 1) * 70)))
            .collect();
        assert_eq!(releases, vec![0, 80, 160, 240]);
    }

    #[test]
    fn schedule_restarts_on_set_jitter() {
        let mut c = NetworkController::new();
        c.set_jitter(Some(SimDuration::from_millis(50)));
        fwd(&mut c, ms(0), 1, 0, 70);
        fwd(&mut c, ms(1), 1, 70, 140);
        c.set_jitter(Some(SimDuration::from_millis(80)));
        // New schedule: the next GET is request 0 again → no hold.
        assert_eq!(fwd(&mut c, ms(200), 1, 140, 210), C2sDecision::Forward);
    }

    #[test]
    fn anchored_schedule_floors_releases() {
        let mut c = NetworkController::new();
        c.set_jitter_anchored(Some(SimDuration::from_millis(80)), ms(500));
        // First GET at 100 ms is floored to the 500 ms anchor.
        assert_eq!(hold_ms(fwd(&mut c, ms(100), 1, 0, 70)), 400);
        // Second: anchor + 80.
        assert_eq!(hold_ms(fwd(&mut c, ms(101), 1, 70, 140)), 479);
    }

    #[test]
    fn coalesced_gets_advance_the_schedule() {
        let mut c = NetworkController::new();
        c.set_jitter(Some(SimDuration::from_millis(50)));
        // One packet carrying 3 GETs: held as request 0, advances k by 3.
        assert_eq!(hold_ms(fwd(&mut c, ms(0), 3, 0, 210)), 0);
        assert_eq!(hold_ms(fwd(&mut c, ms(0), 1, 210, 280)), 150);
    }

    #[test]
    fn non_gets_pass_untouched() {
        let mut c = NetworkController::new();
        c.set_jitter(Some(SimDuration::from_millis(50)));
        fwd(&mut c, ms(0), 1, 0, 70);
        fwd(&mut c, ms(1), 1, 70, 140); // released at 51
                                        // A WINDOW_UPDATE packet (different bytes) is not delayed.
        assert_eq!(fwd(&mut c, ms(2), 0, 140, 160), C2sDecision::Forward);
    }

    #[test]
    fn retransmission_cannot_overtake_held_original() {
        let mut c = NetworkController::new();
        c.set_jitter(Some(SimDuration::from_millis(50)));
        fwd(&mut c, ms(0), 1, 0, 70);
        fwd(&mut c, ms(1), 1, 70, 140); // released at 51
                                        // TCP retransmits the held GET's bytes: held to the same release.
        assert_eq!(hold_ms(fwd(&mut c, ms(10), 0, 70, 140)), 41);
        // After the release passes, the range is pruned.
        assert_eq!(fwd(&mut c, ms(60), 0, 70, 140), C2sDecision::Forward);
    }

    #[test]
    fn gating_defers_gets_until_quiet() {
        let mut c = NetworkController::new();
        c.set_jitter(Some(SimDuration::from_millis(80)));
        c.start_gating();
        assert!(c.is_gating());
        // Busy server→client direction: the GET is gated (dropped).
        assert_eq!(
            c.decide_c2s(ms(0), 1, Seq(0), Seq(70), false),
            C2sDecision::Gate
        );
        // Its TCP retransmission while still busy: gated again.
        assert_eq!(
            c.decide_c2s(ms(300), 0, Seq(0), Seq(70), false),
            C2sDecision::Gate
        );
        assert_eq!(c.stats().gated, 2);
        // Quiet: released immediately, schedule re-anchored here.
        assert_eq!(
            c.decide_c2s(ms(900), 0, Seq(0), Seq(70), true),
            C2sDecision::Forward
        );
        assert!(!c.is_gating());
        // The next GET is k=1 on the re-anchored schedule.
        let d = c.decide_c2s(ms(901), 1, Seq(70), Seq(140), false);
        assert_eq!(hold_ms(d), 80);
    }

    #[test]
    fn drop_window_drops_then_expires() {
        let mut c = NetworkController::new();
        let mut rng = SimRng::seed_from(5);
        c.start_drops(ms(100), 1000); // 100 %
        assert!(c.dropping_at(ms(50)));
        assert!(c.should_drop_s2c(ms(50), &mut rng));
        assert!(!c.should_drop_s2c(ms(100), &mut rng)); // expired
        assert!(!c.dropping_at(ms(150)));
        assert_eq!(c.stats().dropped, 1);
    }

    #[test]
    fn drop_rate_is_statistical() {
        let mut c = NetworkController::new();
        let mut rng = SimRng::seed_from(6);
        c.start_drops(SimTime::from_secs(1000), 800);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| c.should_drop_s2c(ms(1), &mut rng))
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn bandwidth_change_is_edge_triggered() {
        let mut c = NetworkController::new();
        assert_eq!(c.take_bandwidth_change(), None);
        c.set_bandwidth(Some(800_000_000));
        assert_eq!(c.take_bandwidth_change(), Some(Some(800_000_000)));
        assert_eq!(c.take_bandwidth_change(), None);
        c.set_bandwidth(None);
        assert_eq!(c.take_bandwidth_change(), Some(None));
    }

    #[test]
    fn stop_drops_cancels() {
        let mut c = NetworkController::new();
        let mut rng = SimRng::seed_from(7);
        c.start_drops(SimTime::from_secs(10), 1000);
        c.stop_drops();
        assert!(!c.should_drop_s2c(ms(1), &mut rng));
    }
}
