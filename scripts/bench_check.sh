#!/usr/bin/env sh
# Perf regression gate: re-times the fast exhibits (fig1, table2), the
# countermeasure arena (defend), the slow-DoS triad (dos) and
# the population-scale fleet exhibit with fresh `repro --bench-json`
# runs and fails when events/sec (aggregate or per worker core) drops
# more than 20% below the
# checked-in BENCH_repro.json baseline, or when the fleet exhibit's
# bytes-per-co-resident-pair (the counting-allocator telemetry) grows
# more than 20% above it. A cohort-streamed fleet run is smoked up
# front and must keep its working set below the eager baseline. Built to
# tolerate CI noise without missing real regressions: shared CI hosts
# oscillate in speed on minute timescales, and fig1 is a ~1 ms exhibit
# whose single-run rate is mostly scheduler jitter — so the gate makes up
# to three attempts and scores each exhibit by its best rate across all
# attempts so far. A reintroduced per-segment copy costs 2-3x and fails
# every attempt in any window; a transiently contended host does not.
set -eu

cd "$(dirname "$0")/.."

cargo build --release -q -p h2priv-bench --bin repro

fresh=$(mktemp)
seen=$(mktemp)
trap 'rm -f "$fresh" "$seen"' EXIT INT TERM

# Smoke the cohort-streamed fleet path (the bench-fleet-1m hot path at a
# gate-friendly size) before the rate gate: it must complete, and its
# peak working set must stay strictly below the eager fleet baseline's
# bytes-per-pair — streaming that allocates like the eager path is a
# regression in the one property it exists to provide. Kept out of the
# best-of pool on purpose: its low peak would mask an eager-memory
# regression in the min-scored memory gate below.
./target/release/repro fleet --cohort 125 --spread 60 --bench-json="$fresh" >/dev/null
awk '
    /"exhibit"/       { gsub(/[",]/, "", $2); name = $2 }
    /"bytes_per_pair"/ {
        gsub(/,/, "", $2)
        if (NR == FNR) { if (name == "fleet") base = $2 }
        else if (name == "fleet") streamed = $2
    }
    END {
        if (base == "" || streamed == "") {
            print "bench-check: streamed fleet produced no bytes_per_pair row"
            exit 1
        }
        printf "bench-check: streamed fleet %12.0f bytes/pair vs eager baseline %12.0f\n",
               streamed, base
        if (streamed + 0 >= base + 0) {
            print "bench-check: cohort streaming no longer bounds the working set"
            exit 1
        }
    }
' BENCH_repro.json "$fresh"

attempts=3
for attempt in $(seq 1 "$attempts"); do
    # fleet runs at the baseline's default population (1000) so its
    # events/sec is comparable against the checked-in entry.
    ./target/release/repro fig1 table2 defend dos fleet --trials 25 --bench-json="$fresh" >/dev/null
    cat "$fresh" >>"$seen"

    if awk '
        /"exhibit"/ { gsub(/[",]/, "", $2); name = $2 }
        /"events_per_sec"/ {
            gsub(/,/, "", $2)
            if (NR == FNR)            base[name] = $2
            else if ($2 > cur[name])  cur[name]  = $2
        }
        /"ev_s_per_core"/ {
            gsub(/,/, "", $2)
            if (NR == FNR)                   base_core[name] = $2
            else if ($2 > cur_core[name])    cur_core[name]  = $2
        }
        /"bytes_per_pair"/ {
            gsub(/,/, "", $2)
            if (NR == FNR)                                     base_mem[name] = $2
            else if (!(name in cur_mem) || $2 < cur_mem[name]) cur_mem[name]  = $2
        }
        END {
            status = 0
            checked = 0
            for (name in cur) {
                if (!(name in base)) continue
                checked++
                ratio = cur[name] / base[name]
                printf "bench-check: %-8s best %12.0f events/s vs baseline %12.0f (%+.1f%%)\n",
                       name, cur[name], base[name], (ratio - 1) * 100
                if (ratio < 0.80) {
                    printf "bench-check: %s regressed more than 20%%\n", name
                    status = 1
                }
            }
            # Per-core throughput gate: same best-of scoring, catching the
            # scale-out regressions aggregate events/sec hides — e.g. a
            # run that silently fans out over more workers to keep its
            # aggregate flat while each core does less useful work.
            for (name in cur_core) {
                if (!(name in base_core) || base_core[name] == 0) continue
                checked++
                ratio = cur_core[name] / base_core[name]
                printf "bench-check: %-8s best %12.0f ev/s/core  vs baseline %12.0f (%+.1f%%)\n",
                       name, cur_core[name], base_core[name], (ratio - 1) * 100
                if (ratio < 0.80) {
                    printf "bench-check: %s per-core throughput regressed more than 20%%\n", name
                    status = 1
                }
            }
            # Memory gate: bytes per co-resident pair, for exhibits that
            # report it (fleet). Allocation is near-deterministic, but the
            # same best-of-attempts tolerance shields allocator drift.
            for (name in cur_mem) {
                if (!(name in base_mem) || base_mem[name] == 0) continue
                checked++
                ratio = cur_mem[name] / base_mem[name]
                printf "bench-check: %-8s best %12.0f bytes/pair vs baseline %12.0f (%+.1f%%)\n",
                       name, cur_mem[name], base_mem[name], (ratio - 1) * 100
                if (ratio > 1.20) {
                    printf "bench-check: %s memory regressed more than 20%%\n", name
                    status = 1
                }
            }
            if (checked == 0) {
                print "bench-check: no comparable exhibits found"
                status = 1
            }
            exit status
        }
    ' BENCH_repro.json "$seen"; then
        echo "bench-check: ok"
        exit 0
    fi

    if [ "$attempt" -lt "$attempts" ]; then
        echo "bench-check: attempt $attempt/$attempts below threshold; retrying"
        sleep 20
    fi
done

echo "bench-check: FAIL: best of $attempts attempts still >20% worse than baseline"
echo "bench-check: (if this host is simply slower than the one that recorded"
echo "bench-check: BENCH_repro.json, regenerate it: ./target/release/repro --bench-json)"
exit 1
