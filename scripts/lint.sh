#!/usr/bin/env sh
# Lint gate: the workspace must be clippy-clean (warnings are errors),
# rustfmt-clean, and protocol-conformant (the oracle must stay silent
# across a quick repro run). CI and `make lint` both run this.
set -eu

cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

sh scripts/bench_check.sh

# Cross-layer conformance oracle over a quick full-exhibit run
# (equivalent to `make check-conformance`): exits nonzero on any TCP/TLS/
# HTTP/2 invariant violation.
cargo run --release -p h2priv-bench --bin repro -- --quick --check > /dev/null

echo "lint: clean"
