#!/usr/bin/env sh
# Lint gate: the workspace must be clippy-clean (warnings are errors)
# and rustfmt-clean. CI and `make lint` both run this.
set -eu

cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

sh scripts/bench_check.sh

echo "lint: clean"
