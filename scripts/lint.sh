#!/usr/bin/env sh
# Lint gate: the workspace must be clippy-clean (warnings are errors),
# rustfmt-clean, and protocol-conformant (the oracle must stay silent
# across a quick repro run). CI and `make lint` both run this.
set -eu

cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

sh scripts/bench_check.sh

# Scheduler microbench smoke run (`make bench-sched` in full): proves the
# calendar queue and its reference-heap twin still build and run at the
# fig5-like event mix. Regression *thresholds* live in bench-check above,
# which gates whole-trial events/sec against BENCH_repro.json.
cargo bench -q -p h2priv-bench --bench sched -- fig5_mix

# Cross-layer conformance oracle over a quick full-exhibit run
# (equivalent to `make check-conformance`): exits nonzero on any TCP/TLS/
# HTTP/2 invariant violation.
cargo run --release -p h2priv-bench --bin repro -- --quick --check > /dev/null

echo "lint: clean"
